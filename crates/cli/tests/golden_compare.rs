//! Pre-refactor compare goldens: `aarc compare` on the three paper
//! workloads must keep printing the exact per-method cost and makespan the
//! pre-kernel executor produced (the full-precision JSON renderings below
//! were captured before the zero-allocation kernel landed). Together with
//! the CI `cmp` step (threads 1 vs 4) this pins the kernel's bit-exactness
//! end to end: spec compilation, all four search methods, the memo-cache
//! and report serialization.

use std::path::PathBuf;
use std::process::Command;

fn spec(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("specs")
        .join(format!("{name}.yaml"))
}

/// `(spec, [(method, final_cost JSON, final_makespan_ms JSON); 4])`,
/// rendered exactly as the JSON report prints them.
#[allow(clippy::type_complexity)]
const GOLDENS: [(&str, [(&str, &str, &str); 4]); 3] = [
    (
        "chatbot",
        [
            ("aarc", "158574.93333333335", "104184.66666666667"),
            ("bo", "522803.1999999999", "88018.0"),
            ("maff", "213504.0", "103518.0"),
            ("random", "584146.8235294118", "88018.0"),
        ],
    ),
    (
        "ml_pipeline",
        [
            ("aarc", "205722.69714285716", "93347.71366666668"),
            ("bo", "359315.2", "57895.334"),
            ("maff", "399513.6", "117062.0"),
            ("random", "413416.96", "54728.667"),
        ],
    ),
    (
        "video_analysis",
        [
            ("aarc", "1481786.1818181819", "161361.091"),
            ("bo", "1782734.7830985917", "200648.4"),
            ("maff", "1983129.6000000003", "304229.778"),
            ("random", "1741199.8411023999", "207336.772"),
        ],
    ),
];

#[test]
fn compare_output_matches_pre_refactor_goldens() {
    for (name, methods) in GOLDENS {
        let out = Command::new(env!("CARGO_BIN_EXE_aarc"))
            .args(["compare", "--format", "json", "--spec"])
            .arg(spec(name))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "compare failed on {name}");
        let json = String::from_utf8_lossy(&out.stdout);
        for (method, cost, makespan) in methods {
            assert!(
                json.contains(&format!("\"final_cost\": {cost}")),
                "{name}/{method}: final_cost drifted from the pre-refactor golden {cost}\n{json}"
            );
            assert!(
                json.contains(&format!("\"final_makespan_ms\": {makespan}")),
                "{name}/{method}: final_makespan_ms drifted from the pre-refactor golden {makespan}\n{json}"
            );
        }
    }
}
