//! Property test pinning the shared-pool sweep's determinism at the CLI
//! boundary: for any pair of synthetic scenarios, `aarc sweep` must emit
//! byte-identical reports for `--threads 1` and `--threads 8` AND for any
//! submission order of the spec paths.
//!
//! Thread-count invariance holds because cache bookkeeping happens on the
//! submitting thread in candidate order; submission-order invariance holds
//! because the sweep sorts scenarios by name before building its
//! interleaved search units, and cache keys are fingerprint-disjoint across
//! scenarios.

use std::path::PathBuf;
use std::process::Command;

use proptest::prelude::*;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aarc"))
}

fn sweep_bytes(specs: &[&PathBuf], threads: &str, format: &str) -> Vec<u8> {
    let out = bin()
        .args(["sweep", "--threads", threads, "--format", format])
        .args(specs)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "sweep --threads {threads} failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Whatever the scenario shapes, the sweep report (JSON and CSV) is
    /// byte-identical across worker-thread counts and across the order the
    /// spec paths are given.
    #[test]
    fn sweep_is_byte_identical_across_threads_and_submission_order(
        seed_a in 0u64..50_000,
        offset in 1u64..50_000,
        layers in 1usize..3,
    ) {
        let seed_b = seed_a + offset;
        let dir = std::env::temp_dir().join("aarc-proptest-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for seed in [seed_a, seed_b] {
            let path = dir.join(format!("case-{seed}-{layers}.yaml"));
            let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
                seed,
                layers,
                max_width: 2,
                ..aarc_spec::SynthParams::default()
            });
            aarc_spec::save(&spec, &path).unwrap();
            paths.push(path);
        }
        let fwd: Vec<&PathBuf> = paths.iter().collect();
        let rev: Vec<&PathBuf> = paths.iter().rev().collect();

        let json_1t = sweep_bytes(&fwd, "1", "json");
        let json_8t = sweep_bytes(&fwd, "8", "json");
        prop_assert_eq!(&json_1t, &json_8t, "JSON diverged across thread counts");

        let json_rev = sweep_bytes(&rev, "4", "json");
        prop_assert_eq!(&json_1t, &json_rev, "JSON diverged across submission order");

        let csv_1t = sweep_bytes(&fwd, "1", "csv");
        let csv_8t = sweep_bytes(&rev, "8", "csv");
        prop_assert_eq!(&csv_1t, &csv_8t, "CSV diverged");

        for path in paths {
            std::fs::remove_file(path).ok();
        }
    }
}
