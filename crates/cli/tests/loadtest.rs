//! End-to-end test of `aarc loadtest`: the harness must sustain 1000
//! concurrently-live sessions against a real spawned daemon with zero
//! 5xx responses (2xx and per-tenant 429s are the only legal outcomes).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aarc"))
}

fn field_u64(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or_else(|| panic!("no numeric field `{key}` in: {json}"))
}

#[test]
fn loadtest_sustains_a_thousand_concurrent_sessions_without_5xx() {
    let dir = std::env::temp_dir().join("aarc-cli-test-loadtest");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("loadtest.json");

    let out = bin()
        .args(["loadtest", "--concurrent", "1000", "--tenants", "8"])
        .args(["--hold", "--min-concurrent", "1000", "--threads", "2"])
        .args(["--method", "random", "--out"])
        .arg(&out_path)
        .output()
        .expect("loadtest runs");
    assert!(
        out.status.success(),
        "loadtest failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = std::fs::read_to_string(&out_path).expect("loadtest wrote --out");
    assert!(
        field_u64(&report, "concurrent_peak") >= 1000,
        "peak under target: {report}"
    );
    assert_eq!(field_u64(&report, "server_errors_5xx"), 0, "{report}");
    assert_eq!(field_u64(&report, "rejected_503"), 0, "{report}");
    assert!(field_u64(&report, "sessions_started") >= 1000, "{report}");
    assert!(field_u64(&report, "requests") > 0, "{report}");
    // Latency quantiles are present and ordered.
    let p50 = report
        .split("\"p50_ms\":")
        .nth(1)
        .and_then(|r| r.split(',').next())
        .and_then(|r| r.trim().parse::<f64>().ok())
        .unwrap();
    let p99 = report
        .split("\"p99_ms\":")
        .nth(1)
        .and_then(|r| r.split(',').next())
        .and_then(|r| r.trim().parse::<f64>().ok())
        .unwrap();
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
}
