//! Byte-level pre-refactor goldens: `aarc compare --format json` on every
//! committed spec must be *byte-identical* to the output captured before
//! the EvalService/ask-tell refactor (`tests/goldens/compare_<name>.json`),
//! at `--threads 1` and `--threads 8`.
//!
//! This is the refactor's contract: moving the worker pool, memo-cache and
//! scratch arenas into a process-wide service, and the search methods onto
//! ask/tell strategies behind the `SearchDriver`, must not change a single
//! byte — results, trace, cache statistics or serialization.

use std::path::PathBuf;
use std::process::Command;

const SPECS: [&str; 5] = [
    "chatbot",
    "ml_pipeline",
    "video_analysis",
    "synthetic_dense",
    "synthetic_fanout",
];

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn compare_bytes(spec: &str, threads: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_aarc"))
        .args([
            "compare",
            "--threads",
            threads,
            "--format",
            "json",
            "--spec",
        ])
        .arg(repo_path(&format!("specs/{spec}.yaml")))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "compare failed on {spec}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn compare_is_byte_identical_to_the_pre_refactor_goldens() {
    for spec in SPECS {
        let golden = std::fs::read(
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("tests/goldens")
                .join(format!("compare_{spec}.json")),
        )
        .expect("committed golden exists");
        for threads in ["1", "8"] {
            let current = compare_bytes(spec, threads);
            assert!(
                current == golden,
                "{spec} at --threads {threads} drifted from the pre-refactor golden \
                 (lengths {} vs {})",
                current.len(),
                golden.len()
            );
        }
    }
}
