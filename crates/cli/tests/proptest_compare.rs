//! Property test pinning the evaluation engine's determinism guarantee at
//! the CLI boundary: for any synthetic scenario, `aarc compare` must emit
//! byte-identical reports for `--threads 1` and `--threads 8`.
//!
//! This is the end-to-end version of the engine-level unit tests — it
//! covers the whole stack (spec compilation, all four search methods, the
//! shared memo-cache, report serialization) through the real binary.

use std::path::PathBuf;
use std::process::Command;

use proptest::prelude::*;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aarc"))
}

fn compare_bytes(spec: &PathBuf, threads: &str, format: &str) -> Vec<u8> {
    let out = bin()
        .args([
            "compare",
            "--threads",
            threads,
            "--format",
            format,
            "--spec",
        ])
        .arg(spec)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "compare --threads {threads} failed on {}\nstderr: {}",
        spec.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Whatever the scenario shape, the compare report (JSON and CSV) is
    /// byte-identical regardless of the worker-thread count.
    #[test]
    fn compare_is_byte_identical_across_thread_counts(
        seed in 0u64..100_000,
        layers in 1usize..3,
        max_width in 1usize..3,
    ) {
        let dir = std::env::temp_dir().join("aarc-proptest-compare");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join(format!("case-{seed}-{layers}-{max_width}.yaml"));
        let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
            seed,
            layers,
            max_width,
            ..aarc_spec::SynthParams::default()
        });
        aarc_spec::save(&spec, &spec_path).unwrap();

        let json_1t = compare_bytes(&spec_path, "1", "json");
        let json_8t = compare_bytes(&spec_path, "8", "json");
        prop_assert_eq!(&json_1t, &json_8t, "JSON diverged for {}", spec_path.display());

        let csv_1t = compare_bytes(&spec_path, "1", "csv");
        let csv_8t = compare_bytes(&spec_path, "8", "csv");
        prop_assert_eq!(&csv_1t, &csv_8t, "CSV diverged for {}", spec_path.display());

        std::fs::remove_file(&spec_path).ok();
    }
}
