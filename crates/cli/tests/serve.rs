//! End-to-end tests of the `aarc serve` daemon: spawn the compiled
//! binary on an ephemeral port, drive the HTTP API over raw TCP, and pin
//! the online/offline determinism contract — a served session's report is
//! byte-identical to `aarc run` on the same spec/method/SLO.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aarc"))
}

fn chatbot_spec() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("specs/chatbot.yaml")
}

/// A running daemon plus the address parsed from its readiness line.
struct Daemon {
    child: Child,
    addr: String,
    /// Collects every stderr line after the readiness line (structured
    /// logs); joined and returned by [`Daemon::shutdown`].
    stderr_lines: Option<std::thread::JoinHandle<Vec<String>>>,
}

impl Daemon {
    /// Spawns `aarc serve` on an ephemeral port and waits for readiness.
    fn start() -> Daemon {
        Daemon::start_with(&[])
    }

    /// [`Daemon::start`] with extra CLI flags (e.g. `--log-format json`).
    fn start_with(extra_args: &[&str]) -> Daemon {
        let mut child = bin()
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let ready = lines
            .next()
            .expect("daemon prints a readiness line")
            .expect("stderr is utf-8");
        let addr = ready
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable readiness line: {ready}"))
            .to_owned();
        // Keep draining stderr in the background so the daemon never
        // blocks on a full pipe; keep the lines for log assertions.
        let stderr_lines = std::thread::spawn(move || lines.map_while(Result::ok).collect());
        Daemon {
            child,
            addr,
            stderr_lines: Some(stderr_lines),
        }
    }

    /// One HTTP exchange; returns `(status, body)`.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let (status, _, body) = self.exchange(method, path, &[], body);
        (status, body)
    }

    /// One HTTP exchange with extra request headers; returns
    /// `(status, response-header-block, body)`.
    fn exchange(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("daemon accepts");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        ));
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("daemon responds");
        let text = String::from_utf8(raw).expect("response is utf-8");
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable response: {text}"));
        let (headers, body) = text
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_owned(), b.to_owned()))
            .unwrap_or_default();
        (status, headers, body)
    }

    /// Polls a session until it leaves the live phases.
    fn await_terminal(&self, id: u64) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = self.request("GET", &format!("/sessions/{id}"), b"");
            assert_eq!(status, 200, "{body}");
            if !body.contains("\"running\"") && !body.contains("\"paused\"") {
                return body;
            }
            assert!(
                Instant::now() < deadline,
                "session {id} never finished: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// SIGKILLs the daemon — no drain, no flush, the crash the durable
    /// state layer must survive — and reaps the child.
    fn kill(mut self) {
        self.child.kill().expect("daemon is killable");
        self.child.wait().expect("killed daemon is reapable");
        if let Some(handle) = self.stderr_lines.take() {
            let _ = handle.join();
        }
    }

    /// Requests shutdown, waits for a clean exit 0 and returns every
    /// stderr line emitted after the readiness line.
    fn shutdown(mut self) -> Vec<String> {
        let (status, body) = self.request("POST", "/shutdown", b"");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"draining\""), "{body}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("child is pollable") {
                Some(code) => {
                    assert!(code.success(), "daemon exited with {code}");
                    return self
                        .stderr_lines
                        .take()
                        .map(|h| h.join().expect("stderr drain thread joins"))
                        .unwrap_or_default();
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon did not exit after /shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
    }
}

/// Extracts the `"id": N` of a freshly created session.
fn session_id(body: &str) -> u64 {
    body.split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or_else(|| panic!("no session id in: {body}"))
}

/// The offline reference bytes: `aarc run --format json` on the same
/// spec/method (threads don't matter — results are thread-invariant).
fn offline_run_json(method: &str) -> String {
    let out = bin()
        .args(["run", "--spec"])
        .arg(chatbot_spec())
        .args(["--method", method, "--format", "json", "--threads", "2"])
        .output()
        .expect("offline run executes");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("report is utf-8")
}

#[test]
fn serve_walkthrough_sessions_match_offline_runs_and_shutdown_is_clean() {
    let daemon = Daemon::start();
    let spec_bytes = std::fs::read(chatbot_spec()).expect("spec readable");

    let (status, body) = daemon.request("GET", "/healthz", b"");
    assert_eq!(status, 200, "{body}");

    // Upload once; the duplicate is refused.
    let (status, body) = daemon.request("POST", "/scenarios", &spec_bytes);
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"chatbot\""), "{body}");
    let (status, _) = daemon.request("POST", "/scenarios", &spec_bytes);
    assert_eq!(status, 409);
    let (status, body) = daemon.request("POST", "/scenarios/validate", &spec_bytes);
    assert_eq!(status, 200, "{body}");
    let (status, body) = daemon.request("GET", "/scenarios", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"chatbot\""), "{body}");

    // Two concurrent sessions on the one shared service: AARC and BO.
    let (status, body) = daemon.request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}");
    assert_eq!(status, 201, "{body}");
    let aarc_id = session_id(&body);
    let (status, body) = daemon.request(
        "POST",
        "/sessions",
        b"{\"scenario\": \"chatbot\", \"method\": \"bo\"}",
    );
    assert_eq!(status, 201, "{body}");
    let bo_id = session_id(&body);

    let aarc_status = daemon.await_terminal(aarc_id);
    assert!(aarc_status.contains("\"finished\""), "{aarc_status}");
    assert!(aarc_status.contains("\"incumbent\""), "{aarc_status}");
    let bo_status = daemon.await_terminal(bo_id);
    assert!(bo_status.contains("\"finished\""), "{bo_status}");

    // The determinism contract: served reports are byte-identical to the
    // offline `aarc run` of the same spec/method/SLO/seed.
    let (status, served_aarc) = daemon.request("GET", &format!("/sessions/{aarc_id}/report"), b"");
    assert_eq!(status, 200, "{served_aarc}");
    assert_eq!(
        served_aarc,
        offline_run_json("aarc"),
        "AARC online != offline"
    );
    let (status, served_bo) = daemon.request("GET", &format!("/sessions/{bo_id}/report"), b"");
    assert_eq!(status, 200, "{served_bo}");
    assert_eq!(served_bo, offline_run_json("bo"), "BO online != offline");

    // Metrics expose the shared service and both sessions.
    let (status, metrics) = daemon.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    for needle in [
        "aarc_eval_requests_total ",
        "aarc_sessions_total 2",
        "aarc_session_evals{session=\"1\"",
        "aarc_session_evals{session=\"2\"",
    ] {
        assert!(
            metrics.contains(needle),
            "missing `{needle}` in:\n{metrics}"
        );
    }

    // Scenario deletion frees the registry once sessions are terminal.
    let (status, body) = daemon.request("DELETE", "/scenarios/chatbot", b"");
    assert_eq!(status, 200, "{body}");

    daemon.shutdown();
}

#[test]
fn serve_observability_endpoints_and_json_logs() {
    let daemon = Daemon::start_with(&["--log-format", "json"]);
    let spec_bytes = std::fs::read(chatbot_spec()).expect("spec readable");

    let (status, body) = daemon.request("GET", "/version", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"name\": \"aarc\""), "{body}");
    assert!(body.contains("\"rustc\""), "{body}");

    let (status, _) = daemon.request("POST", "/scenarios", &spec_bytes);
    assert_eq!(status, 201);
    let (status, body) = daemon.request(
        "POST",
        "/sessions",
        b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
    );
    assert_eq!(status, 201, "{body}");
    let id = session_id(&body);
    let terminal = daemon.await_terminal(id);
    assert!(terminal.contains("\"finished\""), "{terminal}");

    // The convergence trace of the finished session: per-round points
    // carrying rounds, eval counts and the incumbent.
    let (status, trace) = daemon.request("GET", &format!("/sessions/{id}/trace"), b"");
    assert_eq!(status, 200, "{trace}");
    assert!(trace.contains("\"rounds\""), "{trace}");
    assert!(trace.contains("\"incumbent_cost\""), "{trace}");
    assert!(trace.contains("\"finished\""), "{trace}");

    // The flight recorder saw the whole lifecycle.
    let (status, events) = daemon.request("GET", "/debug/events?limit=1000", b"");
    assert_eq!(status, 200, "{events}");
    for kind in [
        "scenario_registered",
        "session_started",
        "session_step",
        "session_finished",
        "http_request",
    ] {
        assert!(
            events.contains(&format!("\"kind\":\"{kind}\"")),
            "missing `{kind}` event in:\n{events}"
        );
    }
    let (status, bad) = daemon.request("GET", "/debug/events?limit=nope", b"");
    assert_eq!(status, 400, "{bad}");

    // The latency histograms reached the exposition.
    let (status, metrics) = daemon.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE aarc_http_request_seconds histogram",
        "# TYPE aarc_session_step_seconds histogram",
        "# TYPE aarc_eval_batch_seconds histogram",
        "aarc_http_request_seconds_bucket{le=\"",
        "aarc_build_info{",
        "aarc_kernel_simulations_total ",
    ] {
        assert!(
            metrics.contains(needle),
            "missing `{needle}` in:\n{metrics}"
        );
    }

    // Every log line after the readiness banner is a JSON object with the
    // structured-log envelope.
    let logs = daemon.shutdown();
    let mut structured = 0usize;
    for line in &logs {
        if line.starts_with("aarc serve:") {
            continue; // human-facing banner lines, not logs
        }
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON log line: {line}"
        );
        for key in ["\"ts\":", "\"level\":", "\"event\":"] {
            assert!(line.contains(key), "log line missing {key}: {line}");
        }
        structured += 1;
    }
    assert!(structured > 0, "no structured log lines captured: {logs:?}");
    assert!(
        logs.iter()
            .any(|l| l.contains("\"event\":\"http_request\"")),
        "{logs:?}"
    );
    assert!(
        logs.iter()
            .any(|l| l.contains("\"event\":\"session_finished\"")),
        "{logs:?}"
    );
}

#[test]
fn serve_rejects_bad_requests_and_unknown_resources() {
    let daemon = Daemon::start();
    let (status, _) = daemon.request("POST", "/scenarios", b"definitely: [not, a, spec");
    assert_eq!(status, 400);
    let (status, _) = daemon.request("POST", "/sessions", b"{\"scenario\": \"ghost\"}");
    assert_eq!(status, 404);
    let (status, _) = daemon.request("POST", "/sessions", b"{\"nope\": 1}");
    assert_eq!(status, 400);
    let (status, _) = daemon.request("GET", "/sessions/99", b"");
    assert_eq!(status, 404);
    let (status, _) = daemon.request("PATCH", "/scenarios", b"");
    assert_eq!(status, 405);
    let (status, _) = daemon.request("GET", "/no/such/endpoint", b"");
    assert_eq!(status, 404);
    daemon.shutdown();
}

/// Asserts the response is an RFC-7807 problem document: right content
/// type and all five required members present.
fn assert_problem_document(headers: &str, body: &str, status: u16) {
    assert!(
        headers
            .to_ascii_lowercase()
            .contains("content-type: application/problem+json"),
        "non-2xx without problem+json content type:\n{headers}\n{body}"
    );
    for key in [
        "\"type\":",
        "\"title\":",
        "\"status\":",
        "\"detail\":",
        "\"instance\":",
    ] {
        assert!(body.contains(key), "problem missing {key}: {body}");
    }
    assert!(
        body.contains(&format!("\"status\": {status}")),
        "problem status mismatch (want {status}): {body}"
    );
}

#[test]
fn serve_v1_surface_is_canonical_and_legacy_paths_are_deprecated() {
    let daemon = Daemon::start();
    let spec_bytes = std::fs::read(chatbot_spec()).expect("spec readable");

    // The discovery document enumerates the canonical surface.
    let (status, headers, body) = daemon.exchange("GET", "/api/v1", &[], b"");
    assert_eq!(status, 200, "{body}");
    assert!(!headers.contains("Deprecation"), "{headers}");
    assert!(body.contains("\"versions\""), "{body}");
    assert!(body.contains("\"/api/v1/scenarios\""), "{body}");

    // Same handler on both mounts; only the legacy one carries the
    // deprecation marker.
    let (status, headers, v1_body) = daemon.exchange("GET", "/api/v1/healthz", &[], b"");
    assert_eq!(status, 200);
    assert!(!headers.contains("Deprecation"), "{headers}");
    let (status, headers, legacy_body) = daemon.exchange("GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    assert!(headers.contains("Deprecation: true"), "{headers}");
    assert_eq!(v1_body, legacy_body);

    // Upload under v1, read back through a paginated envelope.
    let (status, _, body) = daemon.exchange("POST", "/api/v1/scenarios", &[], &spec_bytes);
    assert_eq!(status, 201, "{body}");
    let (status, _, body) = daemon.exchange("GET", "/api/v1/scenarios?limit=1", &[], b"");
    assert_eq!(status, 200, "{body}");
    for key in ["\"items\":", "\"total\":", "\"next_offset\":"] {
        assert!(body.contains(key), "missing {key} in envelope: {body}");
    }

    // Errors are problem documents on both surfaces.
    let (status, headers, body) = daemon.exchange("GET", "/api/v1/nope", &[], b"");
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 404);
    assert!(body.contains("\"instance\": \"/api/v1/nope\""), "{body}");
    let (status, headers, body) = daemon.exchange("PATCH", "/scenarios", &[], b"");
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 405);
    assert!(headers.contains("Deprecation: true"), "{headers}");

    // Shutdown works under the prefix too.
    let (status, _, body) = daemon.exchange("POST", "/api/v1/shutdown", &[], b"");
    assert_eq!(status, 200, "{body}");
    drop(daemon);
}

#[test]
fn serve_enforces_tenant_auth_quotas_and_rate_limits() {
    let dir = std::env::temp_dir().join("aarc-serve-test-tenants");
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.yaml");
    std::fs::write(
        &tenants,
        "tenants:\n\
         \x20 - name: alpha\n\
         \x20   api_key: ka\n\
         \x20   max_scenarios: 1\n\
         \x20   max_live_sessions: 1\n\
         \x20 - name: beta\n\
         \x20   api_key: kb\n\
         \x20   requests_per_sec: 0.001\n\
         \x20   burst: 1\n",
    )
    .unwrap();
    let tenants_flag = tenants.to_str().unwrap().to_owned();
    let daemon = Daemon::start_with(&["--tenants", &tenants_flag]);
    let spec_bytes = std::fs::read(chatbot_spec()).expect("spec readable");
    let alpha = [("X-Api-Key", "ka")];
    let beta = [("X-Api-Key", "kb")];

    // No keyless entry in the file: anonymous access is disabled.
    let (status, headers, body) = daemon.exchange("GET", "/api/v1/scenarios", &[], b"");
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 401, "{body}");
    let (status, headers, body) =
        daemon.exchange("GET", "/api/v1/scenarios", &[("X-Api-Key", "wrong")], b"");
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 401, "{body}");

    // Alpha's scenario quota is 1: the second distinct upload is a 429
    // problem, not a queue.
    let (status, _, body) = daemon.exchange("POST", "/api/v1/scenarios", &alpha, &spec_bytes);
    assert_eq!(status, 201, "{body}");
    let renamed = String::from_utf8(spec_bytes.clone())
        .unwrap()
        .replace("name: chatbot", "name: second");
    let (status, headers, body) =
        daemon.exchange("POST", "/api/v1/scenarios", &alpha, renamed.as_bytes());
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("quota"), "{body}");

    // Alpha's live-session quota is 1: the second start is 429 with
    // Retry-After.
    let start = b"{\"scenario\": \"chatbot\", \"method\": \"random\", \"paused\": true}";
    let (status, _, body) = daemon.exchange("POST", "/api/v1/sessions", &alpha, start);
    assert_eq!(status, 201, "{body}");
    let (status, headers, body) = daemon.exchange("POST", "/api/v1/sessions", &alpha, start);
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 429, "{body}");
    assert!(headers.contains("Retry-After:"), "{headers}");

    // Beta's bucket holds a single token: the second request inside the
    // window is rate-limited with a Retry-After hint.
    let (status, _, body) = daemon.exchange("GET", "/api/v1/scenarios", &beta, b"");
    assert_eq!(status, 200, "{body}");
    let (status, headers, body) = daemon.exchange("GET", "/api/v1/scenarios", &beta, b"");
    assert_problem_document(&headers, &body, status);
    assert_eq!(status, 429, "{body}");
    assert!(headers.contains("Retry-After:"), "{headers}");

    // Cross-tenant visibility: beta sees an empty world and alpha's
    // session does not exist for it (404, never 403).
    let (status, _, body) = daemon.exchange("GET", "/api/v1/sessions", &alpha, b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\": 1"), "{body}");
    // Shutdown is an operator endpoint: no tenant resolution.
    daemon.shutdown();
}

/// Polls the operator recovery endpoint until startup recovery is done
/// (tenant routes answer 503 `recovering` until then) and returns the
/// final recovery document.
fn await_recovered(daemon: &Daemon) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = daemon.request("GET", "/api/v1/recovery", b"");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"in_progress\": false") {
            return body;
        }
        assert!(Instant::now() < deadline, "recovery never finished: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn serve_survives_kill_dash_nine_and_resumes_bit_identical() {
    let dir = std::env::temp_dir().join(format!("aarc-serve-kill-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state_flag = dir.to_str().unwrap().to_owned();
    let spec_bytes = std::fs::read(chatbot_spec()).expect("spec readable");

    // Boot with durable state, upload, start a session, and wait until
    // its first on-disk checkpoint lands.
    let daemon = Daemon::start_with(&["--state-dir", &state_flag, "--checkpoint-every", "2"]);
    await_recovered(&daemon);
    let (status, body) = daemon.request("POST", "/scenarios", &spec_bytes);
    assert_eq!(status, 201, "{body}");
    let (status, body) = daemon.request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}");
    assert_eq!(status, 201, "{body}");
    let id = session_id(&body);
    let checkpoint = dir
        .join("checkpoints")
        .join(format!("session-{id:010}.json"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !checkpoint.exists() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared at {}",
            checkpoint.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The crash: SIGKILL mid-search. Nothing gets to flush.
    daemon.kill();

    // Restart over the same state dir. The readiness line comes up
    // immediately; tenant routes 503 until recovery has replayed the WAL
    // and checkpoints, so poll the operator recovery endpoint first.
    let daemon = Daemon::start_with(&["--state-dir", &state_flag]);
    let recovery = await_recovered(&daemon);
    assert!(recovery.contains("\"enabled\": true"), "{recovery}");
    assert!(
        recovery.contains("\"sessions_resumed\": 1")
            || recovery.contains("\"sessions_restored\": 1"),
        "recovery saw no session: {recovery}"
    );

    // The scenario survived the crash (write-ahead logged before the 2xx)...
    let (status, body) = daemon.request("GET", "/scenarios", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"chatbot\""), "{body}");
    // ...and the resumed session, run to completion, reports the exact
    // bytes the offline run of the same spec/method/SLO produces.
    let terminal = daemon.await_terminal(id);
    assert!(terminal.contains("\"finished\""), "{terminal}");
    let (status, served) = daemon.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200, "{served}");
    assert_eq!(
        served,
        offline_run_json("aarc"),
        "resumed session != offline run"
    );

    // Recovery is visible in the metrics when persistence is on.
    let (status, metrics) = daemon.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("aarc_recovery_in_progress 0"),
        "missing recovery gauge in:\n{metrics}"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_without_state_dir_never_touches_disk_for_state() {
    let daemon = Daemon::start();
    // The recovery endpoint reports durability as disabled...
    let (status, body) = daemon.request("GET", "/api/v1/recovery", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"enabled\": false"), "{body}");
    assert!(body.contains("\"state_dir\": null"), "{body}");
    // ...and the metrics carry no recovery families at all — the
    // exposition is byte-compatible with a pre-durability daemon.
    let (status, metrics) = daemon.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        !metrics.contains("aarc_recovery_"),
        "recovery families leaked into a stateless daemon:\n{metrics}"
    );
    daemon.shutdown();
}

#[test]
fn serve_threads_zero_is_rejected_before_binding() {
    let out = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
}
