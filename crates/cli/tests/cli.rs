//! End-to-end tests driving the compiled `aarc` binary, covering the
//! acceptance path: `validate` and `compare` succeed on every spec under
//! `specs/`, and `compare` emits a JSON report with cost and SLO attainment
//! per method.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aarc"))
}

/// Numeric coercion over the shim's JSON value model (ints, unsigned ints
/// and floats all count as numbers).
fn as_num(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Int(i) => Some(*i as f64),
        serde::Value::UInt(u) => Some(*u as f64),
        serde::Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("specs")
}

fn all_spec_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(specs_dir())
        .expect("specs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("yaml"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 5,
        "expected the three paper workloads plus at least two synthetic scenarios, found {}",
        paths.len()
    );
    paths
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn validate_succeeds_on_every_committed_spec() {
    let paths = all_spec_paths();
    let out = run_ok(bin().arg("validate").args(&paths));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for p in &paths {
        assert!(
            stdout.contains(&format!("{}: ok", p.display())),
            "missing ok line for {}\n{stdout}",
            p.display()
        );
    }
}

#[test]
fn compare_emits_cost_and_slo_attainment_per_method_on_every_spec() {
    for path in all_spec_paths() {
        let out = run_ok(
            bin()
                .args(["compare", "--format", "json", "--spec"])
                .arg(&path),
        );
        let json = String::from_utf8_lossy(&out.stdout);
        let report = serde_json::parse(&json)
            .unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        let methods = report
            .get("methods")
            .and_then(|m| m.as_seq())
            .unwrap_or_else(|| panic!("{}: no methods array", path.display()));
        assert_eq!(methods.len(), 4, "{}", path.display());
        for entry in methods {
            for field in [
                "method",
                "final_cost",
                "meets_slo",
                "search_cost",
                "configuration",
            ] {
                assert!(
                    entry.get(field).is_some(),
                    "{}: method entry lacks `{field}`: {json}",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn compare_csv_has_one_row_per_method() {
    let spec = specs_dir().join("synthetic_dense.yaml");
    let out = run_ok(
        bin()
            .args(["compare", "--format", "csv", "--spec"])
            .arg(&spec),
    );
    let csv = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 5, "{csv}");
    assert!(lines[0].starts_with("scenario,method,final_cost"));
    for method in ["aarc", "bo", "maff", "random"] {
        assert!(
            lines.iter().any(|l| l.contains(&format!(",{method},"))),
            "{csv}"
        );
    }
}

#[test]
fn run_produces_a_report_and_honours_method_and_format() {
    let spec = specs_dir().join("chatbot.yaml");
    let text = run_ok(bin().args(["run", "--method", "maff", "--spec"]).arg(&spec));
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(
        stdout.contains("configuration for workflow `chatbot`"),
        "{stdout}"
    );
    assert!(stdout.contains("search:"), "{stdout}");

    let json_out = run_ok(
        bin()
            .args(["run", "--method", "aarc", "--format", "json", "--spec"])
            .arg(&spec),
    );
    let report = serde_json::parse(&String::from_utf8_lossy(&json_out.stdout)).unwrap();
    assert!(report
        .get("rows")
        .and_then(|r| r.as_seq())
        .is_some_and(|r| r.len() == 6));
    assert!(report.get("total_cost").is_some());
}

#[test]
fn validate_rejects_broken_specs_with_nonzero_exit() {
    let dir = std::env::temp_dir().join("aarc-cli-test-invalid");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.yaml");
    std::fs::write(
        &path,
        "version: 1\nname: broken\nslo_ms: -5.0\nfunctions:\n  - name: a\n    profile:\n      serial_ms: 1.0\nedges:\n  - from: a\n    to: ghost\n",
    )
    .unwrap();
    let out = bin().arg("validate").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("slo_ms"), "{stderr}");
    assert!(stderr.contains("ghost"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn export_builtin_reproduces_the_committed_golden_specs() {
    let dir = std::env::temp_dir().join("aarc-cli-test-export");
    std::fs::remove_dir_all(&dir).ok();
    run_ok(bin().args(["export-builtin", "--dir"]).arg(&dir));
    for name in ["chatbot", "ml_pipeline", "video_analysis"] {
        let exported = std::fs::read_to_string(dir.join(format!("{name}.yaml"))).unwrap();
        let committed = std::fs::read_to_string(specs_dir().join(format!("{name}.yaml"))).unwrap();
        assert_eq!(
            exported, committed,
            "{name} drifted from the committed spec"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_mints_a_spec_that_validates_and_compares() {
    let dir = std::env::temp_dir().join("aarc-cli-test-generate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("minted.yaml");
    run_ok(
        bin()
            .args([
                "generate",
                "--seed",
                "7",
                "--layers",
                "2",
                "--max-width",
                "2",
                "--out",
            ])
            .arg(&path),
    );
    run_ok(bin().arg("validate").arg(&path));
    let out = run_ok(
        bin()
            .args(["compare", "--format", "table", "--spec"])
            .arg(&path),
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("synthetic-7"), "{table}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_reports_shared_engine_cache_stats() {
    let spec = specs_dir().join("chatbot.yaml");
    let out = run_ok(
        bin()
            .args(["compare", "--threads", "2", "--format", "json", "--spec"])
            .arg(&spec),
    );
    let report = serde_json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let eval = report.get("eval").expect("report carries eval stats");
    for field in [
        "simulations",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
    ] {
        assert!(eval.get(field).is_some(), "eval lacks `{field}`");
    }
    // All four methods execute the same base configuration; the engine must
    // have answered at least the three re-executions from the cache.
    let hits = eval.get("cache_hits").and_then(as_num).unwrap();
    assert!(hits >= 3.0, "expected cross-method cache hits, got {hits}");
}

#[test]
fn bench_emits_schema_and_gates_against_itself() {
    let dir = std::env::temp_dir().join("aarc-cli-test-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let current = dir.join("BENCH_pr.json");
    let spec = specs_dir().join("chatbot.yaml");

    // First run writes the baseline.
    run_ok(
        bin()
            .args(["bench"])
            .arg(&spec)
            .args(["--threads", "2", "--batch", "64", "--out"])
            .arg(&baseline),
    );
    let report =
        serde_json::parse(&std::fs::read_to_string(&baseline).unwrap()).expect("valid JSON");
    assert_eq!(
        report.get("version").and_then(as_num),
        Some(6.0),
        "BENCH schema version"
    );
    let build_info = report.get("build_info").expect("build provenance block");
    assert!(
        build_info.get("rustc").and_then(|v| v.as_str()).is_some(),
        "build_info must record the rustc version"
    );
    let aggregate = report
        .get("aggregate")
        .expect("aggregate shared-pool phase");
    assert!(
        aggregate.get("sims_per_sec").and_then(as_num).unwrap() > 0.0,
        "aggregate phase must record throughput"
    );
    let scenarios = report.get("scenarios").and_then(|s| s.as_seq()).unwrap();
    assert_eq!(scenarios.len(), 1);
    for field in [
        "scenario",
        "spec_fingerprint",
        "thread_scaling",
        "speedup",
        "incremental_resim",
        "batch_dedup",
        "alloc",
        "search",
    ] {
        assert!(
            scenarios[0].get(field).is_some(),
            "scenario lacks `{field}`"
        );
    }
    let curve = scenarios[0]
        .get("thread_scaling")
        .and_then(|s| s.as_seq())
        .unwrap();
    assert_eq!(
        curve.len(),
        2,
        "curve at --threads 2 holds the 1t and 2t points"
    );
    assert_eq!(curve[0].get("threads").and_then(as_num), Some(1.0));
    assert_eq!(curve[1].get("threads").and_then(as_num), Some(2.0));
    let inc = scenarios[0].get("incremental_resim").unwrap();
    assert!(
        inc.get("incremental_sims").and_then(as_num).unwrap() > 0.0,
        "jitter-free spec must take the incremental path"
    );
    let dedup = scenarios[0].get("batch_dedup").unwrap();
    assert!(
        dedup.get("dedup_hits").and_then(as_num).unwrap() > 0.0,
        "duplicate-heavy batch must record fan-out hits"
    );
    let alloc = scenarios[0].get("alloc").unwrap();
    // Batch 64 -> chunk width 8 -> 8 chunks -> 8 slabs over 64 sims.
    assert_eq!(
        alloc.get("allocs_per_sim").and_then(as_num),
        Some(0.125),
        "batch path must mint one result slab per chunk"
    );
    let search = scenarios[0].get("search").unwrap();
    let hit_rate = search.get("cache_hit_rate").and_then(as_num).unwrap();
    assert!(hit_rate > 0.0, "search phase must produce cache hits");
    let latency = search.get("latency").expect("per-eval latency percentiles");
    let p50 = latency.get("p50_ms").and_then(as_num).unwrap();
    let p99 = latency.get("p99_ms").and_then(as_num).unwrap();
    assert!(
        p50 > 0.0 && p99 >= p50,
        "latency percentiles must be ordered"
    );

    // Second run gates against the first: identical workloads on the same
    // machine cannot regress by 900% (huge tolerance keeps this timing-noise
    // proof — the tight 20% gate runs in CI against the committed baseline).
    run_ok(
        bin()
            .args(["bench"])
            .arg(&spec)
            .args([
                "--threads",
                "2",
                "--batch",
                "64",
                "--max-regress",
                "9.0",
                "--max-allocs-per-sim",
                "0.2",
                "--baseline",
            ])
            .arg(&baseline)
            .args(["--out"])
            .arg(&current),
    );

    // An unreachable speedup requirement must fail the gate.
    let out = bin()
        .args(["bench"])
        .arg(&spec)
        .args(["--threads", "2", "--batch", "64", "--min-speedup", "1000"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("speedup"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_honours_threads_and_reports_eval_stats() {
    let spec = specs_dir().join("chatbot.yaml");
    let out_1t = run_ok(bin().args(["run", "--threads", "1", "--spec"]).arg(&spec));
    let out_4t = run_ok(bin().args(["run", "--threads", "4", "--spec"]).arg(&spec));
    assert_eq!(
        out_1t.stdout, out_4t.stdout,
        "run output must not depend on threads"
    );
    let text = String::from_utf8_lossy(&out_1t.stdout);
    assert!(text.contains("eval:"), "{text}");
    assert!(text.contains("hit rate"), "{text}");

    let bad = bin()
        .args(["run", "--threads", "0", "--spec"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--threads"));
}

#[test]
fn unknown_subcommands_and_flags_fail_cleanly() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = bin().args(["run", "--nope", "x"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--nope"));

    let help = run_ok(bin().arg("help"));
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));
}
