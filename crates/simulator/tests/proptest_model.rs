//! Property-based tests of the simulator's core invariants: performance-model
//! monotonicity, pricing algebra and executor consistency.

use aarc_simulator::prelude::*;
use aarc_simulator::ClusterSpec;
use aarc_workflow::{NodeId, WorkflowBuilder};
use proptest::prelude::*;

/// Strategy for a plausible function profile.
fn arb_profile() -> impl Strategy<Value = FunctionProfile> {
    (
        0.0f64..30_000.0,  // serial
        0.0f64..120_000.0, // parallel
        1.0f64..12.0,      // max parallelism
        0.0f64..5_000.0,   // io
        128.0f64..6_144.0, // working set
        1.0f64..6.0,       // penalty factor
    )
        .prop_map(|(serial, parallel, par, io, ws, penalty)| {
            FunctionProfile::builder("f")
                .serial_ms(serial)
                .parallel_ms(parallel)
                .max_parallelism(par)
                .io_ms(io)
                .working_set_mb(ws)
                .mem_floor_mb(ws * 0.5)
                .mem_penalty_factor(penalty)
                .build()
        })
}

fn arb_config() -> impl Strategy<Value = ResourceConfig> {
    (0.1f64..10.0, 128u32..10_240).prop_map(|(v, m)| {
        let space = ResourceSpace::paper();
        ResourceConfig::new(space.snap_vcpu(v), space.snap_memory(m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More CPU never slows a function down; more memory never slows it
    /// down either (weak monotonicity along both axes).
    #[test]
    fn runtime_is_monotone_in_resources(profile in arb_profile(), config in arb_config()) {
        let space = ResourceSpace::paper();
        if let Some(base) = profile.runtime_ms(config) {
            let more_cpu = ResourceConfig::new(
                space.snap_vcpu(config.vcpu.get() + 1.0),
                config.memory.get(),
            );
            let more_mem = ResourceConfig::new(
                config.vcpu.get(),
                space.snap_memory(config.memory.get() + 1_024),
            );
            if let Some(faster) = profile.runtime_ms(more_cpu) {
                prop_assert!(faster <= base + 1e-6);
            }
            let with_mem = profile.runtime_ms(more_mem).expect("more memory can never OOM");
            prop_assert!(with_mem <= base + 1e-6);
        }
    }

    /// Runtime is always strictly positive and finite when the function does
    /// not OOM, and the OOM threshold is consistent with the floor.
    #[test]
    fn runtime_is_positive_or_oom(profile in arb_profile(), config in arb_config()) {
        match profile.runtime_ms(config) {
            Some(rt) => {
                prop_assert!(rt.is_finite());
                prop_assert!(rt > 0.0);
                prop_assert!(f64::from(config.memory.get()) >= profile.mem_floor_mb());
            }
            None => prop_assert!(f64::from(config.memory.get()) < profile.mem_floor_mb()),
        }
    }

    /// The pricing model is exactly linear in runtime and in each resource.
    #[test]
    fn pricing_is_linear(
        vcpu in 0.1f64..10.0,
        mem in 128u32..10_240,
        runtime in 1.0f64..1_000_000.0,
    ) {
        let pricing = PricingModel::paper();
        let config = ResourceConfig::new(vcpu, mem);
        let one = pricing.invocation_cost(config, runtime);
        let two = pricing.invocation_cost(config, runtime * 2.0);
        prop_assert!((two - 2.0 * one).abs() < 1e-6 * one.max(1.0));
        let expected = runtime * (0.512 * vcpu + 0.001 * f64::from(mem));
        prop_assert!((one - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// Snapping is idempotent and always lands inside the space.
    #[test]
    fn snapping_is_idempotent(v in -5.0f64..50.0, m in 0u32..50_000) {
        let space = ResourceSpace::paper();
        let snapped = space.clamp(ResourceConfig::new(v, m));
        prop_assert!(space.contains(snapped));
        prop_assert_eq!(space.clamp(snapped), snapped);
    }

    /// A two-stage chain executes sequentially: the makespan is at least the
    /// sum of both billed runtimes and every function ran exactly once.
    #[test]
    fn chain_execution_is_sequential(p1 in arb_profile(), p2 in arb_profile(), config in arb_config()) {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.add_function("a");
        let c = b.add_function("b");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(a, p1);
        profiles.insert(c, p2);
        let env = WorkflowEnvironment::builder(wf, profiles)
            .cluster(ClusterSpec::paper_testbed())
            .build()
            .unwrap();
        let configs = ConfigMap::uniform(2, config);
        let report = env.execute(&configs).unwrap();
        prop_assert_eq!(report.executions().len(), 2);
        let sum: f64 = report.executions().iter().map(|e| e.runtime_ms).sum();
        prop_assert!(report.makespan_ms() + 1e-6 >= sum);
        // Total cost equals the sum of per-function costs.
        let cost_sum: f64 = report.executions().iter().map(|e| e.cost).sum();
        prop_assert!((report.total_cost() - cost_sum).abs() < 1e-6);
        // Deterministic: the same execution repeats identically.
        let again = env.execute(&configs).unwrap();
        prop_assert_eq!(report.makespan_ms(), again.makespan_ms());
        prop_assert_eq!(report.total_cost(), again.total_cost());
    }

    /// Input scale never decreases runtime for input-sensitive profiles.
    #[test]
    fn heavier_inputs_never_run_faster(parallel in 1_000.0f64..100_000.0, scale in 1.0f64..4.0) {
        let profile = FunctionProfile::builder("scaled")
            .parallel_ms(parallel)
            .max_parallelism(4.0)
            .working_set_mb(1_024.0)
            .mem_floor_mb(256.0)
            .input_sensitivity(1.0)
            .build();
        let config = ResourceConfig::new(2.0, 2_048);
        let nominal = profile
            .evaluate(config, InputSpec::nominal())
            .runtime_ms()
            .expect("no oom at 2 GB");
        let heavy = profile
            .evaluate(config, InputSpec::new(scale, 64.0))
            .runtime_ms()
            .expect("no oom: memory demand does not scale for this profile");
        prop_assert!(heavy + 1e-9 >= nominal);
    }
}

/// Non-proptest sanity check kept here because it exercises the same chain
/// environment: missing configurations are rejected, not silently defaulted.
#[test]
fn executing_with_too_few_configs_is_an_error() {
    let mut b = WorkflowBuilder::new("chain");
    let a = b.add_function("a");
    let c = b.add_function("b");
    b.add_edge(a, c).unwrap();
    let wf = b.build().unwrap();
    let mut profiles = ProfileSet::new();
    profiles.insert(a, FunctionProfile::builder("a").serial_ms(10.0).build());
    profiles.insert(c, FunctionProfile::builder("b").serial_ms(10.0).build());
    let env = WorkflowEnvironment::builder(wf, profiles).build().unwrap();
    let short = ConfigMap::uniform(1, ResourceConfig::new(1.0, 512));
    assert!(env.execute(&short).is_err());
    let _ = NodeId::new(0);
}
