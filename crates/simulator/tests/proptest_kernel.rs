//! Kernel-equivalence property tests: for any workflow shape, profile mix,
//! configuration, input and seed, the compiled kernel's lean [`SimResult`]
//! and the materialised [`ExecutionReport`] must agree *exactly* — same
//! makespan, cost, OOM flag and per-node timings, bit for bit — whether the
//! simulation runs through the [`EvalEngine`], through a manually driven
//! [`CompiledScenario`] with a reused [`SimScratch`], or through the
//! `execute_workflow` compatibility path.

use aarc_simulator::kernel::{BatchSim, CompiledScenario, SimScratch};
use aarc_simulator::{
    ClusterSpec, ConfigMap, EvalEngine, EvalOptions, FunctionProfile, InputSpec, PricingModel,
    ProfileSet, ResourceConfig, ResourceSpace, WorkflowEnvironment,
};
use aarc_workflow::{CommunicationKind, NodeId, WorkflowBuilder};
use proptest::prelude::*;

/// A randomly shaped DAG with random profiles plus matching configurations.
#[derive(Debug, Clone)]
struct Case {
    env: WorkflowEnvironment,
    configs: ConfigMap,
}

type ProfileParams = (f64, f64, f64, f64, f64, f64, f64, f64);

fn profile_from(index: usize, p: ProfileParams) -> FunctionProfile {
    let (serial, parallel, par, io, ws, penalty, sens, mem_sens) = p;
    FunctionProfile::builder(format!("f{index}"))
        .serial_ms(serial)
        .parallel_ms(parallel)
        .max_parallelism(par)
        .io_ms(io)
        .working_set_mb(ws)
        .mem_floor_mb(ws * 0.4)
        .mem_penalty_factor(penalty)
        .input_sensitivity(sens)
        .mem_input_sensitivity(mem_sens)
        .build()
}

fn arb_profile_params() -> impl Strategy<Value = ProfileParams> {
    (
        0.0f64..10_000.0,  // serial
        0.0f64..40_000.0,  // parallel
        1.0f64..8.0,       // max parallelism
        0.0f64..2_000.0,   // io
        128.0f64..4_096.0, // working set
        1.0f64..6.0,       // penalty
        0.0f64..1.5,       // input sensitivity
        0.0f64..1.0,       // memory input sensitivity
    )
}

fn arb_case() -> impl Strategy<Value = Case> {
    (2usize..8).prop_flat_map(|n| {
        (
            proptest::collection::vec(arb_profile_params(), n..n + 1),
            proptest::collection::vec((0.1f64..10.0, 128u32..10_240), n..n + 1),
            0u64..u64::MAX, // wiring seed
            0.0f64..0.2,    // jitter
        )
            .prop_map(move |(params, raw_configs, wiring_seed, jitter)| {
                let mut b = WorkflowBuilder::new("prop-kernel");
                let ids: Vec<NodeId> = (0..n).map(|i| b.add_function(format!("f{i}"))).collect();
                // Deterministic pseudo-random wiring (xorshift): every node
                // past the first gets an edge from some earlier node, with
                // varied payloads and communication kinds; occasional extra
                // edges create fan-in/fan-out.
                let mut state = wiring_seed | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for to in 1..n {
                    let from = (next() as usize) % to;
                    let kind = match next() % 4 {
                        0 => CommunicationKind::Direct,
                        1 => CommunicationKind::Scatter,
                        2 => CommunicationKind::Broadcast,
                        _ => CommunicationKind::Gather,
                    };
                    let payload = (next() % 128) as f64;
                    b.add_edge_with(ids[from], ids[to], payload, kind).unwrap();
                    if to >= 2 && next() % 3 == 0 {
                        let extra = (next() as usize) % to;
                        if extra != from {
                            let _ = b.add_edge(ids[extra], ids[to]);
                        }
                    }
                }
                let wf = b.build().unwrap();
                let mut set = ProfileSet::new();
                for (i, (id, p)) in ids.iter().zip(params).enumerate() {
                    set.insert(*id, profile_from(i, p));
                }
                let cluster = ClusterSpec {
                    runtime_jitter: jitter,
                    ..ClusterSpec::paper_testbed()
                };
                let env = WorkflowEnvironment::builder(wf, set)
                    .cluster(cluster)
                    .build()
                    .unwrap();
                let space = ResourceSpace::paper();
                let configs = ConfigMap::from_vec(
                    raw_configs
                        .into_iter()
                        .map(|(v, m)| ResourceConfig::new(space.snap_vcpu(v), space.snap_memory(m)))
                        .collect(),
                );
                Case { env, configs }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lean result and the materialised report agree exactly on every
    /// observable, across the engine path, the manual kernel path (with a
    /// dirty, reused scratch) and the compatibility executor.
    #[test]
    fn kernel_result_and_materialised_report_agree_exactly(
        case in arb_case(),
        seed in 0u64..u64::MAX,
        scale in 0.25f64..3.0,
        payload in 1.0f64..64.0,
    ) {
        let env = &case.env;
        let configs = &case.configs;
        let n = env.workflow().len();
        let input = InputSpec::new(scale, payload);

        // Path 1: the engine (memo-cache disabled so the kernel always runs).
        let engine = EvalEngine::new(env.clone(), EvalOptions { threads: 1, cache_capacity: 0 });
        let result = engine.evaluate_with(configs, input, seed).unwrap();

        // Path 2: a manually driven scenario with a deliberately dirty
        // scratch (warmed up on a different candidate first).
        let compiled = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .unwrap();
        let mut scratch = SimScratch::new();
        let warmup = ConfigMap::uniform(n, ResourceConfig::new(4.0, 4_096));
        let _ = compiled.simulate(&mut scratch, &warmup, InputSpec::nominal(), seed ^ 1);
        let manual = compiled.simulate(&mut scratch, configs, input, seed).unwrap();
        prop_assert_eq!(&manual, &result);

        // Path 3: the materialised full report (trace recording on) and the
        // compatibility executor.
        let report = engine.materialize_result(configs, &result).unwrap();
        let compat = aarc_simulator::executor::execute_workflow(
            env.workflow(),
            env.profiles(),
            configs,
            input,
            env.cluster(),
            env.pricing(),
            seed,
        )
        .unwrap();
        prop_assert_eq!(&report, &compat);

        // Exact agreement between the lean and the full views, bit for bit.
        prop_assert_eq!(result.makespan_ms().to_bits(), report.makespan_ms().to_bits());
        prop_assert_eq!(result.total_cost().to_bits(), report.total_cost().to_bits());
        prop_assert_eq!(result.any_oom(), report.any_oom());
        prop_assert_eq!(result.len(), report.executions().len());
        for exec in report.executions() {
            let node = result.execution(exec.node).unwrap();
            prop_assert_eq!(node.start_ms.to_bits(), exec.start_ms.to_bits());
            prop_assert_eq!(node.end_ms.to_bits(), exec.end_ms.to_bits());
            prop_assert_eq!(node.runtime_ms.to_bits(), exec.runtime_ms.to_bits());
            prop_assert_eq!(node.cost.to_bits(), exec.cost.to_bits());
            prop_assert_eq!(node.oom, exec.oom);
            // O(1) report lookup agrees with the dense layout.
            prop_assert_eq!(report.runtime_of(exec.node), Some(exec.runtime_ms));
        }
    }

    /// Incremental re-simulation off an anchor agrees bit-for-bit with a
    /// full simulation after any sequence of random config edits — and is
    /// refused (returns `None`) whenever exactness can't be proven (here:
    /// runtime jitter on).
    #[test]
    fn incremental_resimulation_matches_full(
        case in arb_case(),
        edits in proptest::collection::vec((0usize..8, 0.1f64..10.0, 128u32..10_240), 1..6),
        seed in 0u64..u64::MAX,
    ) {
        let env = &case.env;
        let n = env.workflow().len();
        let jitter_free = env.cluster().runtime_jitter == 0.0;
        let compiled = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .unwrap();
        let space = ResourceSpace::paper();
        let mut scratch = SimScratch::new();
        let anchor_cfgs = case.configs.clone();
        let anchor = compiled
            .simulate(&mut scratch, &anchor_cfgs, env.input(), seed)
            .unwrap();
        let mut configs = anchor_cfgs.clone();
        for (node, v, m) in edits {
            configs.set(
                NodeId::new(node % n),
                ResourceConfig::new(space.snap_vcpu(v), space.snap_memory(m)),
            );
        }
        let full = compiled
            .simulate(&mut scratch, &configs, env.input(), seed)
            .unwrap();
        let inc = compiled.try_incremental(
            &mut scratch,
            &configs,
            env.input(),
            seed,
            &anchor_cfgs,
            &anchor,
        );
        if jitter_free {
            // Paper-space candidates on the paper testbed always satisfy
            // the no-stall condition (8 × 10 vCPU < 96), so eligibility is
            // guaranteed — and the result must be bit-identical.
            let inc = inc.expect("jitter-free paper-space candidates are eligible");
            prop_assert_eq!(&inc, &full);
        } else {
            prop_assert!(inc.is_none(), "jitter must refuse incremental reuse");
        }
    }

    /// A `BatchSim` chain (each result anchoring the next candidate) equals
    /// per-candidate `simulate` calls result-for-result, at every jitter and
    /// any edit distance between consecutive candidates.
    #[test]
    fn batch_sim_chain_matches_individual_simulates(
        case in arb_case(),
        edit_seq in proptest::collection::vec(
            proptest::collection::vec((0usize..8, 0.1f64..10.0, 128u32..10_240), 0..4),
            1..8,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let env = &case.env;
        let n = env.workflow().len();
        let compiled = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .unwrap();
        let space = ResourceSpace::paper();
        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&compiled, env.input());
        let mut configs = case.configs.clone();
        for (k, edits) in edit_seq.into_iter().enumerate() {
            for (node, v, m) in edits {
                configs.set(
                    NodeId::new(node % n),
                    ResourceConfig::new(space.snap_vcpu(v), space.snap_memory(m)),
                );
            }
            let candidate_seed = seed.wrapping_add(k as u64);
            let chained = batch.simulate(&mut scratch, &configs, candidate_seed).unwrap();
            let solo = compiled
                .simulate(&mut SimScratch::new(), &configs, env.input(), candidate_seed)
                .unwrap();
            prop_assert_eq!(&chained, &solo);
        }
    }

    /// Engine results are reproducible: evaluating the same candidate twice
    /// with caching disabled re-runs the kernel and lands on the identical
    /// result (scratch reuse leaks nothing between runs).
    #[test]
    fn repeated_uncached_evaluations_are_identical(
        case in arb_case(),
        seed in 0u64..u64::MAX,
    ) {
        let env = &case.env;
        let engine = EvalEngine::new(env.clone(), EvalOptions { threads: 1, cache_capacity: 0 });
        let configs = env.base_configs();
        let a = engine.evaluate_with(&configs, env.input(), seed).unwrap();
        let b = engine.evaluate_with(&configs, env.input(), seed).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(engine.stats().cache_hits, 0);
    }
}

#[test]
fn pricing_model_stays_copy_for_scenario_compilation() {
    // CompiledScenario stores the pricing model by value; this pins the
    // Copy bound the kernel relies on.
    let p = PricingModel::paper();
    let q = p;
    assert_eq!(p, q);
}
