//! Batch-scheduler invariance property tests: the work-stealing pool must
//! be invisible in every observable. For any candidate mix — duplicates
//! included, jitter on or off, memo-cache on or off — the result stream,
//! the cache statistics, the intra-batch dedup count and even the kernel's
//! per-path work counters are bit-identical at every thread count, and the
//! whole batch equals a naive per-candidate `simulate` loop that bypasses
//! the batch scheduler entirely (the pre-round-two static path).

use aarc_simulator::kernel::{BatchSim, CompiledScenario, SimScratch};
use aarc_simulator::{
    derive_seed, ClusterSpec, ColdStartModel, ConfigMap, EvalOptions, EvalService, EvalStats,
    FunctionProfile, KernelCounters, ProfileSet, ResourceConfig, ResourceSpace, SimResult,
    WorkflowEnvironment,
};
use aarc_workflow::{CommunicationKind, NodeId, WorkflowBuilder};
use proptest::prelude::*;

const NODES: usize = 5;

/// One fan-out, one fan-in: `f0 → {f1, f2, f3} → f4`.
fn diamond_env(jitter: f64) -> WorkflowEnvironment {
    let mut b = WorkflowBuilder::new("prop-eval");
    let ids: Vec<NodeId> = (0..NODES)
        .map(|i| b.add_function(format!("f{i}")))
        .collect();
    for mid in 1..4 {
        b.add_edge_with(ids[0], ids[mid], 32.0, CommunicationKind::Scatter)
            .unwrap();
        b.add_edge_with(ids[mid], ids[4], 16.0, CommunicationKind::Gather)
            .unwrap();
    }
    let wf = b.build().unwrap();
    let mut set = ProfileSet::new();
    for (i, id) in ids.iter().enumerate() {
        set.insert(
            *id,
            FunctionProfile::builder(format!("f{i}"))
                .serial_ms(200.0 + 150.0 * i as f64)
                .parallel_ms(900.0)
                .max_parallelism(4.0)
                .working_set_mb(700.0)
                .mem_floor_mb(280.0)
                .build(),
        );
    }
    let cluster = ClusterSpec {
        runtime_jitter: jitter,
        cold_start: ColdStartModel::typical(),
        ..ClusterSpec::paper_testbed()
    };
    WorkflowEnvironment::builder(wf, set)
        .cluster(cluster)
        .build()
        .unwrap()
}

/// Snaps raw candidates to the paper space, replaying some of them as
/// verbatim copies of earlier candidates to force intra-batch duplicates.
fn candidates_from(raw: Vec<Vec<(f64, u32)>>, dup_from: &[usize]) -> Vec<ConfigMap> {
    let space = ResourceSpace::paper();
    let mut out: Vec<ConfigMap> = Vec::with_capacity(raw.len());
    for (k, cfgs) in raw.into_iter().enumerate() {
        let dup = dup_from[k] % (k + 1);
        if dup < k {
            out.push(out[dup].clone());
        } else {
            out.push(ConfigMap::from_vec(
                cfgs.into_iter()
                    .map(|(v, m)| ResourceConfig::new(space.snap_vcpu(v), space.snap_memory(m)))
                    .collect(),
            ));
        }
    }
    out
}

struct BatchRun {
    results: Vec<SimResult>,
    stats: EvalStats,
    dedup: u64,
    kernel: KernelCounters,
}

fn run_batch(
    env: &WorkflowEnvironment,
    candidates: &[ConfigMap],
    threads: usize,
    cache: usize,
) -> BatchRun {
    let service = EvalService::new(EvalOptions {
        threads,
        cache_capacity: cache,
    });
    let handle = service.register(env.clone());
    let results = handle.evaluate_batch(candidates).unwrap();
    BatchRun {
        results,
        stats: handle.stats(),
        dedup: handle.batch_dedup_hits(),
        kernel: service.kernel_counters(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batches_are_bit_identical_across_thread_counts(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.1f64..10.0, 128u32..10_240), NODES..NODES + 1),
            1..40,
        ),
        dup_from in proptest::collection::vec(0usize..64, 40usize..41),
        jittered in 0u8..2,
        cached in 0u8..2,
    ) {
        let env = diamond_env(if jittered == 1 { 0.05 } else { 0.0 });
        let candidates = candidates_from(raw, &dup_from);
        let cache = if cached == 1 { 1_024 } else { 0 };

        let one = run_batch(&env, &candidates, 1, cache);
        let two = run_batch(&env, &candidates, 2, cache);
        let eight = run_batch(&env, &candidates, 8, cache);

        // Result streams are bit-identical at every pool width.
        prop_assert_eq!(&one.results, &two.results);
        prop_assert_eq!(&one.results, &eight.results);

        // So are the statistics (modulo the reported pool width itself)...
        for other in [&two, &eight] {
            prop_assert_eq!(one.stats.requests, other.stats.requests);
            prop_assert_eq!(one.stats.cache_hits, other.stats.cache_hits);
            prop_assert_eq!(one.stats.cache_misses, other.stats.cache_misses);
            prop_assert_eq!(one.stats.evictions, other.stats.evictions);
            prop_assert_eq!(one.dedup, other.dedup);
            // ...and the kernel's per-path work counters: chunk boundaries
            // depend only on the batch length, so the relaxed/incremental
            // split is scheduler-invariant, not just the results.
            prop_assert_eq!(one.kernel, other.kernel);
        }

        // The whole batch equals a naive per-candidate simulate loop with
        // the handle's positional seeds — the batch scheduler, the
        // incremental anchors and the dedup fan-out are pure acceleration.
        let compiled = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .unwrap();
        let mut scratch = SimScratch::new();
        for (i, configs) in candidates.iter().enumerate() {
            // A jitter-free duplicate fans out the first occurrence's
            // result — including its positional seed (results are
            // seed-independent without jitter, and the cache key already
            // normalises the seed away). Under jitter every candidate runs
            // with its own seed.
            let first = candidates[..i]
                .iter()
                .position(|c| c.as_slice() == configs.as_slice())
                .unwrap_or(i);
            let index = if env.cluster().runtime_jitter > 0.0 { i } else { first };
            let seed = derive_seed(env.seed(), index as u64);
            let solo = compiled
                .simulate_reference(&mut scratch, configs, env.input(), seed)
                .unwrap();
            prop_assert_eq!(&one.results[i], &solo);
        }
    }

    /// The chunked SoA batch path is chunking-invariant: splitting one
    /// candidate stream into chunks of any width produces the same results
    /// bit-for-bit as a solo `simulate` per candidate — each chunk starts a
    /// fresh anchor chain, every result is a view into its chunk's slab,
    /// and the kernel performs exactly one result-slab allocation per
    /// chunk. (Counters other than results may legitimately differ between
    /// *chunkings* — the relaxed/incremental split depends on where chains
    /// reset — which is why the batch scheduler derives its chunk width
    /// from the batch length alone; thread-invariance of the full counter
    /// struct is pinned by the test above.)
    #[test]
    fn chunkings_are_invisible_in_results(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.1f64..10.0, 128u32..10_240), NODES..NODES + 1),
            1..24,
        ),
        dup_from in proptest::collection::vec(0usize..64, 24usize..25),
        chunk_pick in 0usize..3,
    ) {
        let env = diamond_env(0.0);
        let candidates = candidates_from(raw, &dup_from);
        let compiled = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .unwrap();
        let input = env.input();

        let chunk = [1, 3, candidates.len()][chunk_pick].max(1);
        let jobs: Vec<(&aarc_simulator::ConfigMap, u64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (c, derive_seed(env.seed(), i as u64)))
            .collect();

        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&compiled, input);
        let mut chunked = Vec::with_capacity(jobs.len());
        let mut chunks = 0u64;
        for piece in jobs.chunks(chunk) {
            chunked.extend(batch.simulate_chunk(&mut scratch, piece));
            chunks += 1;
        }
        prop_assert_eq!(scratch.counters().result_slab_allocs, chunks);

        let mut solo_scratch = SimScratch::new();
        for (i, &(configs, seed)) in jobs.iter().enumerate() {
            let solo = compiled
                .simulate(&mut solo_scratch, configs, input, seed)
                .unwrap();
            prop_assert_eq!(chunked[i].as_ref().unwrap(), &solo);
        }
    }
}
