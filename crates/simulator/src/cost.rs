//! The paper's extended AWS-Lambda pricing model for decoupled resources.

use serde::{Deserialize, Serialize};

use crate::resources::ResourceConfig;

/// Pricing model `cost = t · (µ0 · cpu + µ1 · mem) + µ2` (paper §IV-A d).
///
/// * `t` — billed function runtime in **milliseconds**,
/// * `cpu` — vCPU cores,
/// * `mem` — memory in MB,
/// * `µ0` — price per vCPU-millisecond (paper value `0.512`),
/// * `µ1` — price per MB-millisecond (paper value `0.001`),
/// * `µ2` — flat per-request / orchestration price (paper value `0`).
///
/// Cost is reported in the same abstract currency units as the paper (the
/// constants are scale factors rather than dollars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// µ0 — price per vCPU-millisecond.
    pub per_vcpu_ms: f64,
    /// µ1 — price per MB-millisecond.
    pub per_mb_ms: f64,
    /// µ2 — flat price per function request.
    pub per_request: f64,
}

impl PricingModel {
    /// The constants used in the paper: µ0 = 0.512, µ1 = 0.001, µ2 = 0.
    pub fn paper() -> Self {
        PricingModel {
            per_vcpu_ms: 0.512,
            per_mb_ms: 0.001,
            per_request: 0.0,
        }
    }

    /// Creates a custom pricing model.
    pub fn new(per_vcpu_ms: f64, per_mb_ms: f64, per_request: f64) -> Self {
        PricingModel {
            per_vcpu_ms,
            per_mb_ms,
            per_request,
        }
    }

    /// Cost of one invocation of a function configured as `config` that ran
    /// for `runtime_ms` milliseconds.
    pub fn invocation_cost(&self, config: ResourceConfig, runtime_ms: f64) -> f64 {
        runtime_ms
            * (self.per_vcpu_ms * config.vcpu.get()
                + self.per_mb_ms * f64::from(config.memory.get()))
            + self.per_request
    }

    /// The per-millisecond "resource rate" of a configuration, i.e. the cost
    /// slope with respect to runtime. Useful for reasoning about whether a
    /// resource reduction can ever pay off.
    pub fn rate(&self, config: ResourceConfig) -> f64 {
        self.per_vcpu_ms * config.vcpu.get() + self.per_mb_ms * f64::from(config.memory.get())
    }
}

impl Default for PricingModel {
    fn default() -> Self {
        PricingModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = PricingModel::paper();
        assert_eq!(p.per_vcpu_ms, 0.512);
        assert_eq!(p.per_mb_ms, 0.001);
        assert_eq!(p.per_request, 0.0);
        assert_eq!(PricingModel::default(), p);
    }

    #[test]
    fn invocation_cost_formula() {
        let p = PricingModel::paper();
        let c = ResourceConfig::new(2.0, 1024);
        // 1000 ms * (0.512*2 + 0.001*1024) = 1000 * 2.048 = 2048
        let cost = p.invocation_cost(c, 1000.0);
        assert!((cost - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn per_request_component_is_additive() {
        let p = PricingModel::new(0.0, 0.0, 5.0);
        let c = ResourceConfig::new(4.0, 4096);
        assert_eq!(p.invocation_cost(c, 123.0), 5.0);
    }

    #[test]
    fn cost_is_monotone_in_runtime_and_resources() {
        let p = PricingModel::paper();
        let small = ResourceConfig::new(1.0, 512);
        let big = ResourceConfig::new(2.0, 512);
        assert!(p.invocation_cost(small, 100.0) < p.invocation_cost(small, 200.0));
        assert!(p.invocation_cost(small, 100.0) < p.invocation_cost(big, 100.0));
        assert!(p.rate(small) < p.rate(big));
    }

    #[test]
    fn zero_runtime_costs_only_the_request_fee() {
        let p = PricingModel::new(0.512, 0.001, 3.0);
        let c = ResourceConfig::new(10.0, 10_240);
        assert_eq!(p.invocation_cost(c, 0.0), 3.0);
    }
}
