//! Input descriptions for input-sensitive workflows.
//!
//! §IV-D of the paper adds an *Input-Aware Configuration Engine*: the Video
//! Analysis workflow is input-sensitive, so the engine classifies incoming
//! requests (by video bitrate/duration) into size classes and selects a
//! pre-computed configuration per class. The simulator models an input as a
//! scalar *scale factor* applied to the per-function work plus a payload
//! size used for data-transfer latency.

use serde::{Deserialize, Serialize};

/// Coarse input size class used by the input-aware engine (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InputClass {
    /// Small inputs (e.g. short, low-bitrate videos).
    Light,
    /// Typical inputs.
    Middle,
    /// Large inputs (e.g. long, high-bitrate videos).
    Heavy,
}

impl InputClass {
    /// All classes, in increasing size order.
    pub const ALL: [InputClass; 3] = [InputClass::Light, InputClass::Middle, InputClass::Heavy];

    /// The canonical representative input of the class, used when a caller
    /// (e.g. `aarc sweep --classes ...`) needs a concrete input per class
    /// without a measured trace: half / nominal / double scale with a
    /// matching payload. `representative().classify()` round-trips.
    pub fn representative(self) -> InputSpec {
        match self {
            InputClass::Light => InputSpec::new(0.5, 4.0),
            InputClass::Middle => InputSpec::nominal(),
            InputClass::Heavy => InputSpec::new(2.0, 32.0),
        }
    }
}

impl std::fmt::Display for InputClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InputClass::Light => "light",
            InputClass::Middle => "middle",
            InputClass::Heavy => "heavy",
        };
        f.write_str(s)
    }
}

/// A concrete input to a workflow execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Multiplier applied to every function's compute and memory demands.
    /// `1.0` is the nominal (profiling) input.
    pub scale: f64,
    /// Size of the input payload entering the workflow, in MB.
    pub payload_mb: f64,
}

impl InputSpec {
    /// The nominal input used for profiling (`scale = 1`, 8 MB payload).
    pub fn nominal() -> Self {
        InputSpec {
            scale: 1.0,
            payload_mb: 8.0,
        }
    }

    /// Creates an input with the given scale and payload.
    pub fn new(scale: f64, payload_mb: f64) -> Self {
        InputSpec { scale, payload_mb }
    }

    /// Classifies the input into the coarse classes used by the input-aware
    /// engine. Scales below 0.75 are light, above 1.5 heavy, otherwise
    /// middle.
    pub fn classify(&self) -> InputClass {
        if self.scale < 0.75 {
            InputClass::Light
        } else if self.scale > 1.5 {
            InputClass::Heavy
        } else {
            InputClass::Middle
        }
    }
}

impl Default for InputSpec {
    fn default() -> Self {
        InputSpec::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_default() {
        assert_eq!(InputSpec::default(), InputSpec::nominal());
        assert_eq!(InputSpec::nominal().scale, 1.0);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(InputSpec::new(0.4, 2.0).classify(), InputClass::Light);
        assert_eq!(InputSpec::new(1.0, 8.0).classify(), InputClass::Middle);
        assert_eq!(InputSpec::new(2.5, 64.0).classify(), InputClass::Heavy);
    }

    #[test]
    fn representatives_round_trip_through_classification() {
        for class in InputClass::ALL {
            assert_eq!(class.representative().classify(), class);
        }
        assert_eq!(InputClass::Middle.representative(), InputSpec::nominal());
    }

    #[test]
    fn class_ordering_and_display() {
        assert!(InputClass::Light < InputClass::Heavy);
        assert_eq!(InputClass::ALL.len(), 3);
        assert_eq!(InputClass::Middle.to_string(), "middle");
    }
}
