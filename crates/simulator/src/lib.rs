//! Deterministic serverless-platform simulator used as the measurement
//! substrate for the AARC reproduction.
//!
//! The original paper runs every workflow function in its own Docker
//! container on a 96-core Xeon host, decoupling CPU and memory limits via
//! cgroups, and measures wall-clock runtime and billed cost. All search
//! methods (AARC, Bayesian optimization, MAFF) only ever observe the triple
//! `(runtime, cost, oom?)` of a workflow execution under a candidate
//! configuration. This crate reproduces exactly that observation interface
//! with an analytical performance model and a discrete-event workflow
//! executor:
//!
//! * [`resources`] — decoupled CPU/memory allocations ([`ResourceConfig`])
//!   and the discretised configuration space of the paper (memory 128–10240
//!   MB in 64 MB steps, vCPU 0.1–10).
//! * [`perf_model`] — per-function performance profiles: Amdahl-style CPU
//!   scaling, working-set memory pressure, an OOM floor and I/O time.
//! * [`cost`] — the paper's extended AWS-Lambda pricing model
//!   `cost = t · (µ0·cpu + µ1·mem) + µ2`.
//! * [`cluster`] — hosts, containers and cold starts.
//! * [`kernel`](mod@crate::kernel) — the zero-allocation simulation kernel:
//!   [`CompiledScenario`] (static structure precomputed once per
//!   environment), [`SimScratch`] (a reusable per-worker arena) and
//!   [`SimResult`] (the lean result the searchers and the memo-cache use).
//! * [`executor`] — discrete-event execution of a workflow DAG under a
//!   configuration, materialising a full [`ExecutionReport`] (names +
//!   trace) on top of the kernel.
//! * [`profiler`] — profiling runs with dummy input that produce the node
//!   weights consumed by the Graph-Centric Scheduler.
//! * [`env`](mod@crate::env) — [`WorkflowEnvironment`], the bundle (workflow
//!   + profiles + pricing + cluster + input) that search methods sample.
//! * [`eval`](mod@crate::eval) — the candidate-evaluation layer the
//!   searchers submit through: a process-wide [`EvalService`] (deterministic
//!   worker pool, sharded fingerprint-keyed memo-cache, scratch arenas)
//!   borrowed by cheap per-scenario [`ScenarioHandle`]s, with
//!   [`EvalEngine`] as a single-scenario compatibility facade.
//!
//! # Example
//!
//! ```
//! use aarc_simulator::prelude::*;
//! use aarc_workflow::WorkflowBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = WorkflowBuilder::new("demo");
//! let f = b.add_function("crunch");
//! let g = b.add_function("store");
//! b.add_edge(f, g)?;
//! let wf = b.build()?;
//!
//! let mut profiles = ProfileSet::new();
//! profiles.insert(f, FunctionProfile::builder("crunch").parallel_ms(8_000.0).build());
//! profiles.insert(g, FunctionProfile::builder("store").serial_ms(500.0).build());
//!
//! let env = WorkflowEnvironment::builder(wf, profiles).build()?;
//! let report = env.execute(&env.base_configs())?;
//! assert!(report.makespan_ms() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod cost;
pub mod env;
pub mod error;
pub mod eval;
pub mod event;
pub mod executor;
pub mod input;
pub mod kernel;
pub mod metrics;
pub mod perf_model;
pub mod profiler;
pub mod resources;
pub mod trace;

pub use cluster::{ClusterSpec, ColdStartModel};
pub use cost::PricingModel;
pub use env::{ConfigMap, WorkflowEnvironment, WorkflowEnvironmentBuilder};
pub use error::SimulatorError;
pub use eval::{
    derive_seed, EvalEngine, EvalOptions, EvalService, EvalStats, EvalTelemetry, ScenarioEvalStats,
    ScenarioHandle, ServiceSnapshot,
};
pub use executor::{ExecutionReport, FunctionExecution};
pub use input::{InputClass, InputSpec};
pub use kernel::{
    BatchSim, CompiledScenario, KernelCounters, NodeSimOutcome, SimResult, SimScratch,
};
pub use perf_model::{FunctionProfile, FunctionProfileBuilder, ProfileSet};
pub use profiler::{profile_workflow, ProfiledWeights};
pub use resources::{MemoryMb, ResourceConfig, ResourceSpace, Vcpu};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::cluster::ClusterSpec;
    pub use crate::cost::PricingModel;
    pub use crate::env::{ConfigMap, WorkflowEnvironment};
    pub use crate::error::SimulatorError;
    pub use crate::eval::{
        EvalEngine, EvalOptions, EvalService, EvalStats, ScenarioEvalStats, ScenarioHandle,
        ServiceSnapshot,
    };
    pub use crate::executor::ExecutionReport;
    pub use crate::input::{InputClass, InputSpec};
    pub use crate::kernel::{CompiledScenario, SimResult, SimScratch};
    pub use crate::perf_model::{FunctionProfile, ProfileSet};
    pub use crate::profiler::profile_workflow;
    pub use crate::resources::{MemoryMb, ResourceConfig, ResourceSpace, Vcpu};
}
