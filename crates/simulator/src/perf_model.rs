//! Analytical per-function performance model.
//!
//! The model maps a decoupled `(vCPU, memory)` allocation and an input scale
//! to a runtime, reproducing the qualitative behaviour the paper measures on
//! real containers (§II-A, Fig. 2):
//!
//! * **CPU scaling** — compute is split into a serial part and a
//!   parallelisable part (Amdahl's law). The parallel part speeds up with
//!   vCPU only up to the function's intrinsic parallelism; allocations below
//!   one core slow both parts down proportionally.
//! * **Memory pressure** — every function has a working set. Allocations
//!   above it give no speedup (the flat heat-map rows of Fig. 2a/2b);
//!   allocations below it pay a growing spill/GC penalty; allocations below
//!   a hard floor fail with an out-of-memory error.
//! * **I/O** — a fixed component insensitive to either resource.
//! * **Input sensitivity** — compute, working set and floor scale with the
//!   input (`scale^sensitivity`), which is what makes the Video Analysis
//!   workflow input-sensitive (§IV-D).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use aarc_workflow::NodeId;

use crate::input::InputSpec;
use crate::resources::ResourceConfig;

/// Outcome of evaluating the performance model for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InvocationOutcome {
    /// The invocation completed in the given number of milliseconds.
    Completed {
        /// Modelled runtime in milliseconds.
        runtime_ms: f64,
    },
    /// The invocation was killed because memory was below the OOM floor.
    OutOfMemory {
        /// Megabytes that would have been required to stay above the floor.
        required_mb: f64,
    },
}

impl InvocationOutcome {
    /// Runtime if the invocation completed.
    pub fn runtime_ms(&self) -> Option<f64> {
        match self {
            InvocationOutcome::Completed { runtime_ms } => Some(*runtime_ms),
            InvocationOutcome::OutOfMemory { .. } => None,
        }
    }

    /// Returns `true` for an out-of-memory outcome.
    pub fn is_oom(&self) -> bool {
        matches!(self, InvocationOutcome::OutOfMemory { .. })
    }
}

/// Performance profile of one serverless function.
///
/// Build profiles with [`FunctionProfile::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    max_parallelism: f64,
    io_ms: f64,
    working_set_mb: f64,
    mem_floor_mb: f64,
    mem_penalty_factor: f64,
    input_sensitivity: f64,
    mem_input_sensitivity: f64,
}

impl FunctionProfile {
    /// Starts building a profile for a function called `name`.
    pub fn builder(name: impl Into<String>) -> FunctionProfileBuilder {
        FunctionProfileBuilder::new(name)
    }

    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serial compute component at one core, in milliseconds.
    pub fn serial_ms(&self) -> f64 {
        self.serial_ms
    }

    /// Parallelisable compute component at one core, in milliseconds.
    pub fn parallel_ms(&self) -> f64 {
        self.parallel_ms
    }

    /// Maximum number of cores the function can exploit.
    pub fn max_parallelism(&self) -> f64 {
        self.max_parallelism
    }

    /// Working-set size at nominal input, in MB.
    pub fn working_set_mb(&self) -> f64 {
        self.working_set_mb
    }

    /// Hard OOM floor at nominal input, in MB.
    pub fn mem_floor_mb(&self) -> f64 {
        self.mem_floor_mb
    }

    /// Resource-insensitive I/O component, in milliseconds.
    pub fn io_ms(&self) -> f64 {
        self.io_ms
    }

    /// Slowdown factor applied when memory sits at the OOM floor.
    pub fn mem_penalty_factor(&self) -> f64 {
        self.mem_penalty_factor
    }

    /// Exponent with which compute scales with the input scale factor.
    pub fn input_sensitivity(&self) -> f64 {
        self.input_sensitivity
    }

    /// Exponent with which the working set and floor scale with the input
    /// scale factor.
    pub fn mem_input_sensitivity(&self) -> f64 {
        self.mem_input_sensitivity
    }

    /// Evaluates the model for one invocation.
    ///
    /// Returns [`InvocationOutcome::OutOfMemory`] when the configured memory
    /// is below the (input-scaled) floor, otherwise the modelled runtime.
    pub fn evaluate(&self, config: ResourceConfig, input: InputSpec) -> InvocationOutcome {
        let compute_scale = input.scale.max(0.0).powf(self.input_sensitivity);
        let mem_scale = input.scale.max(0.0).powf(self.mem_input_sensitivity);

        let floor = self.mem_floor_mb * mem_scale;
        let mem = f64::from(config.memory.get());
        if mem < floor {
            return InvocationOutcome::OutOfMemory { required_mb: floor };
        }

        let vcpu = config.vcpu.get().max(1e-3);
        // Below one core even the serial part is throttled; above one core
        // only the parallel part benefits, up to the intrinsic parallelism.
        let serial_speed = vcpu.min(1.0);
        let parallel_speed = vcpu.min(self.max_parallelism).max(serial_speed);
        let serial_time = self.serial_ms * compute_scale / serial_speed;
        let parallel_time = self.parallel_ms * compute_scale / parallel_speed;

        let working_set = (self.working_set_mb * mem_scale).max(floor);
        let pressure = if mem >= working_set || working_set <= floor {
            1.0
        } else {
            // Linear interpolation between no penalty (at the working set)
            // and the full penalty factor (at the floor).
            let deficit = (working_set - mem) / (working_set - floor);
            1.0 + (self.mem_penalty_factor - 1.0) * deficit.clamp(0.0, 1.0)
        };

        let runtime =
            (serial_time + parallel_time) * pressure + self.io_ms * compute_scale.max(1.0).sqrt();
        InvocationOutcome::Completed {
            runtime_ms: runtime.max(0.1),
        }
    }

    /// Convenience wrapper returning the runtime at nominal input or `None`
    /// on OOM.
    pub fn runtime_ms(&self, config: ResourceConfig) -> Option<f64> {
        self.evaluate(config, InputSpec::nominal()).runtime_ms()
    }
}

/// Builder for [`FunctionProfile`].
///
/// All durations default to zero, the working set defaults to 128 MB, the
/// floor to 64 MB, the memory penalty to 4× and the parallelism cap to 1
/// core, so the minimal useful profile only needs a compute component:
///
/// ```
/// use aarc_simulator::perf_model::FunctionProfile;
///
/// let p = FunctionProfile::builder("resize").parallel_ms(2_000.0).build();
/// assert_eq!(p.name(), "resize");
/// ```
#[derive(Debug, Clone)]
pub struct FunctionProfileBuilder {
    profile: FunctionProfile,
}

impl FunctionProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        FunctionProfileBuilder {
            profile: FunctionProfile {
                name: name.into(),
                serial_ms: 0.0,
                parallel_ms: 0.0,
                max_parallelism: 1.0,
                io_ms: 0.0,
                working_set_mb: 128.0,
                mem_floor_mb: 64.0,
                mem_penalty_factor: 4.0,
                input_sensitivity: 1.0,
                mem_input_sensitivity: 0.0,
            },
        }
    }

    /// Sets the serial compute time at one core (ms).
    pub fn serial_ms(mut self, v: f64) -> Self {
        self.profile.serial_ms = v;
        self
    }

    /// Sets the parallelisable compute time at one core (ms).
    pub fn parallel_ms(mut self, v: f64) -> Self {
        self.profile.parallel_ms = v;
        self
    }

    /// Sets the maximum exploitable parallelism (cores).
    pub fn max_parallelism(mut self, v: f64) -> Self {
        self.profile.max_parallelism = v.max(1.0);
        self
    }

    /// Sets the resource-insensitive I/O time (ms).
    pub fn io_ms(mut self, v: f64) -> Self {
        self.profile.io_ms = v;
        self
    }

    /// Sets the working-set size at nominal input (MB).
    pub fn working_set_mb(mut self, v: f64) -> Self {
        self.profile.working_set_mb = v;
        self
    }

    /// Sets the OOM floor at nominal input (MB).
    pub fn mem_floor_mb(mut self, v: f64) -> Self {
        self.profile.mem_floor_mb = v;
        self
    }

    /// Sets the slowdown factor applied when memory is at the floor.
    pub fn mem_penalty_factor(mut self, v: f64) -> Self {
        self.profile.mem_penalty_factor = v.max(1.0);
        self
    }

    /// Sets the exponent with which compute scales with the input scale.
    /// Zero makes the function input-insensitive.
    pub fn input_sensitivity(mut self, v: f64) -> Self {
        self.profile.input_sensitivity = v;
        self
    }

    /// Sets the exponent with which the working set and floor scale with the
    /// input scale.
    pub fn mem_input_sensitivity(mut self, v: f64) -> Self {
        self.profile.mem_input_sensitivity = v;
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> FunctionProfile {
        let mut p = self.profile;
        // The floor can never exceed the working set.
        if p.mem_floor_mb > p.working_set_mb {
            p.mem_floor_mb = p.working_set_mb;
        }
        p
    }
}

/// The collection of per-function profiles of one workflow, keyed by node
/// id.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileSet {
    profiles: HashMap<NodeId, FunctionProfile>,
}

impl ProfileSet {
    /// Creates an empty profile set.
    pub fn new() -> Self {
        ProfileSet {
            profiles: HashMap::new(),
        }
    }

    /// Inserts (or replaces) the profile of `node`.
    pub fn insert(&mut self, node: NodeId, profile: FunctionProfile) -> Option<FunctionProfile> {
        self.profiles.insert(node, profile)
    }

    /// The profile of `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<&FunctionProfile> {
        self.profiles.get(&node)
    }

    /// Number of profiled functions.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` if no profiles are present.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates over `(NodeId, &FunctionProfile)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &FunctionProfile)> {
        self.profiles.iter().map(|(k, v)| (*k, v))
    }
}

impl FromIterator<(NodeId, FunctionProfile)> for ProfileSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, FunctionProfile)>>(iter: T) -> Self {
        ProfileSet {
            profiles: iter.into_iter().collect(),
        }
    }
}

impl Extend<(NodeId, FunctionProfile)> for ProfileSet {
    fn extend<T: IntoIterator<Item = (NodeId, FunctionProfile)>>(&mut self, iter: T) {
        self.profiles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_bound() -> FunctionProfile {
        FunctionProfile::builder("cpu")
            .serial_ms(1_000.0)
            .parallel_ms(16_000.0)
            .max_parallelism(8.0)
            .working_set_mb(256.0)
            .mem_floor_mb(128.0)
            .build()
    }

    fn mem_bound() -> FunctionProfile {
        FunctionProfile::builder("mem")
            .serial_ms(2_000.0)
            .parallel_ms(2_000.0)
            .max_parallelism(2.0)
            .working_set_mb(4096.0)
            .mem_floor_mb(1024.0)
            .mem_penalty_factor(6.0)
            .build()
    }

    #[test]
    fn runtime_decreases_with_more_cpu_up_to_parallelism() {
        let p = cpu_bound();
        let r1 = p.runtime_ms(ResourceConfig::new(1.0, 1024)).unwrap();
        let r4 = p.runtime_ms(ResourceConfig::new(4.0, 1024)).unwrap();
        let r8 = p.runtime_ms(ResourceConfig::new(8.0, 1024)).unwrap();
        let r10 = p.runtime_ms(ResourceConfig::new(10.0, 1024)).unwrap();
        assert!(r4 < r1);
        assert!(r8 < r4);
        // Beyond the parallelism cap extra cores do not help.
        assert!((r10 - r8).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_function_is_memory_insensitive_above_working_set() {
        let p = cpu_bound();
        let small = p.runtime_ms(ResourceConfig::new(2.0, 512)).unwrap();
        let large = p.runtime_ms(ResourceConfig::new(2.0, 8192)).unwrap();
        assert!((small - large).abs() < 1e-9, "flat heat-map row expected");
    }

    #[test]
    fn sub_core_allocations_slow_serial_work() {
        let p = cpu_bound();
        let full = p.runtime_ms(ResourceConfig::new(1.0, 1024)).unwrap();
        let half = p.runtime_ms(ResourceConfig::new(0.5, 1024)).unwrap();
        assert!(
            half > 1.9 * full,
            "half a core should roughly double runtime"
        );
    }

    #[test]
    fn memory_pressure_slows_and_oom_kills() {
        let p = mem_bound();
        let comfortable = p.runtime_ms(ResourceConfig::new(2.0, 6144)).unwrap();
        let pressured = p.runtime_ms(ResourceConfig::new(2.0, 2048)).unwrap();
        assert!(pressured > comfortable);
        let outcome = p.evaluate(ResourceConfig::new(2.0, 512), InputSpec::nominal());
        assert!(outcome.is_oom());
        assert_eq!(outcome.runtime_ms(), None);
    }

    #[test]
    fn penalty_interpolates_between_working_set_and_floor() {
        let p = mem_bound();
        let at_ws = p.runtime_ms(ResourceConfig::new(2.0, 4096)).unwrap();
        let mid = p.runtime_ms(ResourceConfig::new(2.0, 2560)).unwrap();
        let near_floor = p.runtime_ms(ResourceConfig::new(2.0, 1088)).unwrap();
        assert!(at_ws < mid && mid < near_floor);
        // At the floor the slowdown approaches the configured penalty factor
        // (compute portion only).
        assert!(near_floor < at_ws * 6.5);
    }

    #[test]
    fn input_scale_grows_compute_and_memory_demand() {
        let p = FunctionProfile::builder("video")
            .parallel_ms(10_000.0)
            .max_parallelism(4.0)
            .working_set_mb(2048.0)
            .mem_floor_mb(1024.0)
            .input_sensitivity(1.0)
            .mem_input_sensitivity(1.0)
            .build();
        let nominal = p
            .evaluate(ResourceConfig::new(4.0, 4096), InputSpec::nominal())
            .runtime_ms()
            .unwrap();
        let heavy = p
            .evaluate(ResourceConfig::new(4.0, 4096), InputSpec::new(2.0, 64.0))
            .runtime_ms()
            .unwrap();
        assert!(heavy > 1.8 * nominal);
        // A heavy input can push a previously-safe allocation under the OOM
        // floor.
        let oom = p.evaluate(ResourceConfig::new(4.0, 1536), InputSpec::new(2.0, 64.0));
        assert!(oom.is_oom());
    }

    #[test]
    fn input_insensitive_function_ignores_scale() {
        let p = FunctionProfile::builder("store")
            .serial_ms(500.0)
            .input_sensitivity(0.0)
            .build();
        let a = p
            .evaluate(ResourceConfig::new(1.0, 512), InputSpec::new(0.2, 1.0))
            .runtime_ms()
            .unwrap();
        let b = p
            .evaluate(ResourceConfig::new(1.0, 512), InputSpec::new(3.0, 100.0))
            .runtime_ms()
            .unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn builder_clamps_floor_to_working_set() {
        let p = FunctionProfile::builder("weird")
            .working_set_mb(256.0)
            .mem_floor_mb(512.0)
            .build();
        assert!(p.mem_floor_mb() <= p.working_set_mb());
    }

    #[test]
    fn profile_set_insert_get_iter() {
        let mut set = ProfileSet::new();
        assert!(set.is_empty());
        set.insert(NodeId::new(0), cpu_bound());
        set.insert(NodeId::new(1), mem_bound());
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(NodeId::new(1)).unwrap().name(), "mem");
        assert!(set.get(NodeId::new(9)).is_none());
        let names: Vec<&str> = set.iter().map(|(_, p)| p.name()).collect();
        assert_eq!(names.len(), 2);
        let rebuilt: ProfileSet = set.iter().map(|(id, p)| (id, p.clone())).collect();
        assert_eq!(rebuilt.len(), 2);
    }

    #[test]
    fn runtime_never_returns_non_positive() {
        let p = FunctionProfile::builder("noop").build();
        let r = p.runtime_ms(ResourceConfig::new(10.0, 10_240)).unwrap();
        assert!(r > 0.0);
    }
}
