//! Minimal discrete-event machinery used by the workflow executor.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use aarc_workflow::NodeId;

/// Simulation time in integer microseconds (integer so events order totally).
pub type SimTime = u64;

/// Converts milliseconds (as used throughout the performance model) to
/// microsecond simulation ticks.
pub fn ms_to_ticks(ms: f64) -> SimTime {
    (ms.max(0.0) * 1_000.0).round() as SimTime
}

/// Converts microsecond ticks back to milliseconds.
pub fn ticks_to_ms(ticks: SimTime) -> f64 {
    ticks as f64 / 1_000.0
}

/// Events processed by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// All dependencies (and data transfers) of a function are satisfied.
    FunctionReady(NodeId),
    /// A running function finished and releases its container resources.
    FunctionFinished(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list: events pop in time order, ties broken
/// by insertion order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Drops all pending events and restarts the tie-breaking sequence
    /// counter, keeping the heap's allocation. A cleared queue behaves
    /// exactly like a freshly constructed one, which is what lets
    /// [`SimScratch`](crate::kernel::SimScratch) reuse it across
    /// simulations without perturbing event order.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(300, Event::FunctionReady(NodeId::new(2)));
        q.push(100, Event::FunctionReady(NodeId::new(0)));
        q.push(200, Event::FunctionFinished(NodeId::new(1)));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(50, Event::FunctionReady(NodeId::new(0)));
        q.push(50, Event::FunctionReady(NodeId::new(1)));
        q.push(50, Event::FunctionReady(NodeId::new(2)));
        let nodes: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::FunctionReady(n) | Event::FunctionFinished(n) => n.index(),
            })
        })
        .collect();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn conversion_round_trip() {
        assert_eq!(ms_to_ticks(1.5), 1500);
        assert_eq!(ticks_to_ms(1500), 1.5);
        assert_eq!(ms_to_ticks(-3.0), 0);
    }

    #[test]
    fn clear_resets_events_and_tie_breaking() {
        let mut q = EventQueue::new();
        q.push(10, Event::FunctionReady(NodeId::new(0)));
        q.push(10, Event::FunctionReady(NodeId::new(1)));
        q.clear();
        assert!(q.is_empty());
        // After a clear, insertion-order tie breaking restarts from scratch:
        // the queue is indistinguishable from a new one.
        q.push(5, Event::FunctionReady(NodeId::new(2)));
        q.push(5, Event::FunctionReady(NodeId::new(1)));
        let nodes: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::FunctionReady(n) | Event::FunctionFinished(n) => n.index(),
            })
        })
        .collect();
        assert_eq!(nodes, vec![2, 1]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::FunctionReady(NodeId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
