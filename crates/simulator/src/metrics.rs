//! Small statistics helpers used by the experiment harness (means, standard
//! deviations, percentiles) — the quantities reported in Table II.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; zero for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`. Returns a zeroed summary
    /// for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Returns the `p`-th percentile (0–100) of `values` using linear
/// interpolation between closest ranks. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Mean absolute difference between consecutive values, normalised by the
/// mean of the series — the "average fluctuation amplitude" metric the paper
/// uses to quantify the instability of Bayesian optimization (§II-B).
pub fn fluctuation_amplitude(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean.abs() < f64::EPSILON {
        return 0.0;
    }
    let mad =
        values.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (values.len() - 1) as f64;
    mad / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138_089_935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn fluctuation_amplitude_matches_definition() {
        // values 10, 12, 8 -> diffs 2, 4 -> mad 3; mean 10 -> 0.3
        let f = fluctuation_amplitude(&[10.0, 12.0, 8.0]);
        assert!((f - 0.3).abs() < 1e-12);
        assert_eq!(fluctuation_amplitude(&[5.0]), 0.0);
        assert_eq!(fluctuation_amplitude(&[]), 0.0);
    }

    #[test]
    fn fluctuation_of_constant_series_is_zero() {
        assert_eq!(fluctuation_amplitude(&[4.0, 4.0, 4.0]), 0.0);
    }
}
