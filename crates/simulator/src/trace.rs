//! Execution traces for debugging and visualisation.

use serde::{Deserialize, Serialize};

use aarc_workflow::NodeId;

/// One event recorded during a simulated workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A function became ready (all dependencies and transfers done).
    Ready {
        /// Simulation time in ms.
        at_ms: f64,
        /// The function.
        node: NodeId,
    },
    /// A function started executing on a host.
    Started {
        /// Simulation time in ms.
        at_ms: f64,
        /// The function.
        node: NodeId,
        /// Host index it was placed on.
        host: usize,
        /// Cold-start latency paid before user code ran, in ms.
        cold_start_ms: f64,
    },
    /// A function finished successfully.
    Finished {
        /// Simulation time in ms.
        at_ms: f64,
        /// The function.
        node: NodeId,
        /// Billed runtime in ms.
        runtime_ms: f64,
    },
    /// A function was killed by the out-of-memory supervisor.
    OomKilled {
        /// Simulation time in ms.
        at_ms: f64,
        /// The function.
        node: NodeId,
        /// Memory that would have been required, in MB.
        required_mb: f64,
    },
    /// A function had to wait for cluster capacity.
    QueuedForCapacity {
        /// Simulation time in ms.
        at_ms: f64,
        /// The function.
        node: NodeId,
    },
}

impl TraceEvent {
    /// Simulation time of the event in milliseconds.
    pub fn at_ms(&self) -> f64 {
        match self {
            TraceEvent::Ready { at_ms, .. }
            | TraceEvent::Started { at_ms, .. }
            | TraceEvent::Finished { at_ms, .. }
            | TraceEvent::OomKilled { at_ms, .. }
            | TraceEvent::QueuedForCapacity { at_ms, .. } => *at_ms,
        }
    }

    /// The function the event refers to.
    pub fn node(&self) -> NodeId {
        match self {
            TraceEvent::Ready { node, .. }
            | TraceEvent::Started { node, .. }
            | TraceEvent::Finished { node, .. }
            | TraceEvent::OomKilled { node, .. }
            | TraceEvent::QueuedForCapacity { node, .. } => *node,
        }
    }
}

/// The ordered list of trace events of one execution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ExecutionTrace { events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in chronological (insertion) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events concerning one function.
    pub fn for_node(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.node() == node).collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates_and_filters() {
        let mut t = ExecutionTrace::new();
        assert!(t.is_empty());
        t.push(TraceEvent::Ready {
            at_ms: 0.0,
            node: NodeId::new(0),
        });
        t.push(TraceEvent::Started {
            at_ms: 0.0,
            node: NodeId::new(0),
            host: 0,
            cold_start_ms: 0.0,
        });
        t.push(TraceEvent::Finished {
            at_ms: 10.0,
            node: NodeId::new(0),
            runtime_ms: 10.0,
        });
        t.push(TraceEvent::OomKilled {
            at_ms: 12.0,
            node: NodeId::new(1),
            required_mb: 2048.0,
        });
        assert_eq!(t.len(), 4);
        assert_eq!(t.for_node(NodeId::new(0)).len(), 3);
        assert_eq!(t.for_node(NodeId::new(1)).len(), 1);
        assert_eq!(t.events()[3].at_ms(), 12.0);
        assert_eq!(t.events()[3].node(), NodeId::new(1));
    }
}
