//! The zero-allocation simulation kernel.
//!
//! PR 2's `EvalEngine` made candidate evaluation parallel and memoised;
//! profiling showed the remaining per-simulation cost was dominated by
//! avoidable allocation, not modelling: every `execute_workflow` call cloned
//! a `String` name per function, scanned the workflow's edge list linearly
//! per successor wake-up, recorded a trace nobody read, and rebuilt its
//! event heap and state vectors from scratch — and the memo-cache then
//! cloned the full report (names, trace and all) on every hit. This module
//! splits the simulation path into three pieces that eliminate all of that:
//!
//! * [`CompiledScenario`] — everything static about a
//!   [`WorkflowEnvironment`](crate::env::WorkflowEnvironment), precomputed
//!   once: CSR-style successor adjacency over dense `u32` node indices,
//!   per-edge pre-resolved transfer payloads (so edge transfer latency is a
//!   table lookup instead of an `O(E)` scan), flat node-indexed profile and
//!   predecessor-count tables, and function names interned once (read only
//!   when a full report is materialised).
//! * [`SimScratch`] — the reusable per-worker arena: event queue, node
//!   states, execution records, cluster placement state and the capacity
//!   wait queue. A worker resets it between candidates instead of
//!   reallocating; after warm-up a simulation performs no heap allocation
//!   beyond the shared result slab (one `Arc` per batch *chunk* since
//!   round three; one per result on the solo entry points).
//! * [`SimResult`] — the lean searcher-facing result: makespan, cost, OOM
//!   flag and per-node timings behind an `Arc`, so the memo-cache clones it
//!   with a reference-count bump. No `String`s, no trace. The full
//!   [`ExecutionReport`](crate::executor::ExecutionReport) (names + trace)
//!   is materialised on demand — only for search winners and CLI `run`
//!   output — via [`CompiledScenario::simulate_report`].
//!
//! The kernel is bit-identical to the pre-compiled executor at every seed
//! and thread count: it performs the same floating-point operations in the
//! same order, drives the same event queue with the same tie-breaking, and
//! draws jitter from the same RNG stream (one draw per started,
//! non-OOM-killed function, in start order). The equivalence proptest in
//! `tests/proptest_kernel.rs` and the pinned CLI compare goldens enforce
//! this.
//!
//! # Round two: the relaxation fast path
//!
//! When runtime jitter is off and a candidate provably cannot stall on
//! capacity (see [`CompiledScenario::relaxation_exact`]), the event loop
//! degenerates: every function starts the instant its last input arrives,
//! so the whole simulation is one pass over the DAG in topological order —
//! `ready = max(pred.end + transfer)` pulled through a predecessor CSR, no
//! event heap, no placement bookkeeping. [`CompiledScenario::simulate`]
//! routes there automatically and falls back to the reference event loop
//! ([`CompiledScenario::simulate_reference`]) otherwise, performing the
//! same floating-point operations in the same order either way, so results
//! stay bit-identical. On top of that sit incremental re-simulation
//! ([`CompiledScenario::try_incremental`]: reuse an anchor's timeline for
//! every node not downstream of a config change — the searchers'
//! `PathConfigState` probes touch one path suffix at a time) and
//! [`BatchSim`], which chains candidates of one batch so each result
//! anchors the next and the per-edge transfer table is computed once.
//!
//! # Round three: data layout
//!
//! With the algorithmic fast paths in place, profiling moved the bottleneck
//! to memory layout, and this round rebuilds the hot loop around it:
//!
//! * **Structure-of-arrays scratch.** The relaxation no longer walks
//!   mixed-field `NodeSimOutcome` rows; [`SimScratch`] owns dense outcome
//!   *columns* (`start_ms[]`, `end_ms[]`, `runtime_ms[]`, `cost[]` and a
//!   packed `oom` bitset) that the kernel updates in place. An incremental
//!   pass reads predecessor finish times from one contiguous `f64` column
//!   and leaves unaffected nodes untouched — the old per-candidate
//!   anchor-row copy is gone entirely.
//! * **Branch-light relaxation.** The per-node ready time is a plain `f64`
//!   max-reduction over the predecessor CSR (`ms_to_ticks` is monotone, so
//!   hoisting it out of the loop is bit-exact), and the changed/affected
//!   sets are packed `u64` bitmask words instead of `Vec<bool>` — the inner
//!   loops are autovectorizable passes over flat arrays.
//! * **Slab-pooled results.** [`BatchSim::simulate_chunk`] stages every
//!   outcome row of a scheduler chunk into one arena and freezes it with a
//!   *single* `Arc<[NodeSimOutcome]>` allocation; each [`SimResult`] is an
//!   `(offset, len)` view into that shared slab. The allocator leaves the
//!   batch miss path: one heap allocation per chunk instead of one per
//!   simulation (solo entry points still mint one slab per result). The
//!   trade: a memoised result keeps its whole chunk slab alive — bounded by
//!   `chunk × n × 40` bytes per pinned slab, which the memo-cache capacity
//!   caps. [`KernelCounters::result_slab_allocs`] /
//!   [`KernelCounters::result_slab_bytes`] make the layout observable, so a
//!   regression shows up in `aarc bench`'s allocs/sim gate, not just in
//!   wall-clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aarc_workflow::{CommunicationKind, NodeId, Workflow};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::cost::PricingModel;
use crate::env::ConfigMap;
use crate::error::SimulatorError;
use crate::event::{ms_to_ticks, ticks_to_ms, Event, EventQueue, SimTime};
use crate::executor::{ExecutionReport, FunctionExecution, OOM_KILL_MS};
use crate::input::InputSpec;
use crate::perf_model::{FunctionProfile, InvocationOutcome, ProfileSet};
use crate::resources::ResourceConfig;
use crate::trace::{ExecutionTrace, TraceEvent};

/// Headroom (in vCPUs) the no-stall proof leaves below a host's capacity.
/// First-fit placement accumulates `free_vcpu -= / +=` in f64, whose drift
/// over a workflow is bounded by a few ULPs per operation (~1e-13 at the
/// paper testbed's 96-vCPU magnitude); 1e-6 dominates that by orders of
/// magnitude while staying far below the 0.1-vCPU configuration grid, so
/// the check never admits a candidate the event loop could stall on and
/// never rejects a realistically-sized one. Memory needs no margin: u32
/// demands summed in u64 compare exactly.
const NO_STALL_VCPU_MARGIN: f64 = 1e-6;

/// Per-node outcome of one simulation, as observed by the searchers.
///
/// This is the `Copy` row of a [`SimResult`]: only the quantities the
/// search methods actually consume (path budgets, path costs, profiled
/// weights and report rows). Host placement, cold-start latency and the
/// ready timestamp live only in the materialised
/// [`ExecutionReport`](crate::executor::ExecutionReport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSimOutcome {
    /// Time the container started, ms.
    pub start_ms: f64,
    /// Time the function finished, ms.
    pub end_ms: f64,
    /// Billed runtime (excludes queueing and cold start), ms.
    pub runtime_ms: f64,
    /// Billed cost of this invocation.
    pub cost: f64,
    /// Whether the invocation was killed out-of-memory.
    pub oom: bool,
}

/// The lean result of one simulation: what the searchers observe and what
/// the [`EvalEngine`](crate::eval::EvalEngine) memo-cache stores.
///
/// Cloning is a reference-count bump plus a handful of scalars — no
/// `String`s, no trace, no per-node reallocation — which is what makes
/// cache hits nearly free. Since round three the per-node rows live in a
/// shared refcounted *slab*: results minted by
/// [`BatchSim::simulate_chunk`] are `(offset, len)` views into one
/// arena-per-chunk allocation, so the batch miss path allocates once per
/// chunk rather than once per simulation. Equality compares the visible
/// rows and scalars, never slab identity. The result remembers the
/// `(input, seed)` it was produced under so the matching full
/// [`ExecutionReport`](crate::executor::ExecutionReport) can be
/// re-materialised on demand (see
/// [`EvalEngine::materialize_result`](crate::eval::EvalEngine::materialize_result)).
#[derive(Clone)]
pub struct SimResult {
    slab: Arc<[NodeSimOutcome]>,
    offset: u32,
    len: u32,
    makespan_ms: f64,
    total_cost: f64,
    any_oom: bool,
    input: InputSpec,
    seed: u64,
}

impl PartialEq for SimResult {
    fn eq(&self, other: &Self) -> bool {
        self.makespan_ms == other.makespan_ms
            && self.total_cost == other.total_cost
            && self.any_oom == other.any_oom
            && self.input == other.input
            && self.seed == other.seed
            && self.executions() == other.executions()
    }
}

impl fmt::Debug for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print the view, not the (possibly chunk-wide) backing slab.
        f.debug_struct("SimResult")
            .field("nodes", &self.executions())
            .field("makespan_ms", &self.makespan_ms)
            .field("total_cost", &self.total_cost)
            .field("any_oom", &self.any_oom)
            .field("input", &self.input)
            .field("seed", &self.seed)
            .finish()
    }
}

impl SimResult {
    /// End-to-end latency of the workflow in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Total billed cost over all function invocations.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Whether any function was OOM-killed.
    pub fn any_oom(&self) -> bool {
        self.any_oom
    }

    /// `true` when no function failed and the makespan is within `slo_ms`.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        !self.any_oom && self.makespan_ms <= slo_ms
    }

    /// Per-function outcomes, indexed by node index.
    pub fn executions(&self) -> &[NodeSimOutcome] {
        let lo = self.offset as usize;
        &self.slab[lo..lo + self.len as usize]
    }

    /// The outcome of one function (O(1) — nodes are stored densely).
    pub fn execution(&self, node: NodeId) -> Option<NodeSimOutcome> {
        self.executions().get(node.index()).copied()
    }

    /// Billed runtime of one function, if it ran.
    pub fn runtime_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.runtime_ms)
    }

    /// Billed cost of one function, if it ran.
    pub fn cost_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.cost)
    }

    /// Number of functions that ran.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the result covers no functions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The input the simulation ran with.
    pub fn input(&self) -> InputSpec {
        self.input
    }

    /// The RNG seed the simulation ran with (only meaningful under runtime
    /// jitter; jitter-free results are seed-independent).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Per-node mutable simulation state, reset between runs.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    remaining_preds: u32,
    ready_at_ticks: SimTime,
    started: bool,
    finished: bool,
}

/// Full per-node record of one run: everything needed to materialise a
/// [`FunctionExecution`] without re-deriving anything.
#[derive(Debug, Clone, Copy)]
struct NodeRecord {
    config: ResourceConfig,
    host: usize,
    ready_ms: f64,
    start_ms: f64,
    end_ms: f64,
    runtime_ms: f64,
    cold_start_ms: f64,
    cost: f64,
    oom: bool,
}

impl NodeRecord {
    const EMPTY: NodeRecord = NodeRecord {
        config: ResourceConfig {
            vcpu: crate::resources::Vcpu(0.0),
            memory: crate::resources::MemoryMb(0),
        },
        host: 0,
        ready_ms: 0.0,
        start_ms: 0.0,
        end_ms: 0.0,
        runtime_ms: 0.0,
        cold_start_ms: 0.0,
        cost: 0.0,
        oom: false,
    };
}

/// A packed bitmask over node indices: one `u64` word per 64 nodes.
///
/// Replaces the round-two `Vec<bool>` changed/affected sets — word-wide
/// clears, copies and popcounts instead of byte-per-node traffic.
#[derive(Debug, Default, Clone)]
struct BitMask {
    words: Vec<u64>,
}

impl BitMask {
    /// Resizes to cover `n` bits, all cleared.
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    fn assign(&mut self, i: usize, value: bool) {
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Copies `other`'s bits, reusing this mask's allocation.
    fn copy_from(&mut self, other: &BitMask) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }
}

/// Dense structure-of-arrays outcome columns: the round-three layout the
/// relaxation streams through. One entry per node, candidate-major (the
/// columns always hold exactly one candidate's outcome; an incremental
/// pass edits the affected entries in place).
#[derive(Debug, Default)]
struct Columns {
    start_ms: Vec<f64>,
    end_ms: Vec<f64>,
    runtime_ms: Vec<f64>,
    cost: Vec<f64>,
    oom: BitMask,
}

impl Columns {
    fn len(&self) -> usize {
        self.end_ms.len()
    }

    /// Resizes every column to `n` zeroed entries.
    fn reset(&mut self, n: usize) {
        self.start_ms.clear();
        self.start_ms.resize(n, 0.0);
        self.end_ms.clear();
        self.end_ms.resize(n, 0.0);
        self.runtime_ms.clear();
        self.runtime_ms.resize(n, 0.0);
        self.cost.clear();
        self.cost.resize(n, 0.0);
        self.oom.reset(n);
    }

    /// Gathers AoS rows (an anchor result) into the columns.
    fn load(&mut self, rows: &[NodeSimOutcome]) {
        self.reset(rows.len());
        for (i, r) in rows.iter().enumerate() {
            self.start_ms[i] = r.start_ms;
            self.end_ms[i] = r.end_ms;
            self.runtime_ms[i] = r.runtime_ms;
            self.cost[i] = r.cost;
            self.oom.assign(i, r.oom);
        }
    }
}

/// The scalar reductions of one simulation, computed over the columns (or
/// staged rows) in node order — the same order every result path has always
/// used, so they are bit-identical across paths.
#[derive(Debug, Clone, Copy)]
struct RelaxSummary {
    makespan_ms: f64,
    total_cost: f64,
    any_oom: bool,
}

/// The reusable per-worker simulation arena.
///
/// Owns every growable buffer a simulation needs — the event heap, node
/// states, execution records, cluster placement state and the capacity wait
/// queue — so that repeated simulations reuse their allocations instead of
/// rebuilding them. One scratch serves one simulation at a time; the
/// [`EvalEngine`](crate::eval::EvalEngine) keeps a pool of them, one per
/// active worker.
#[derive(Debug, Default)]
pub struct SimScratch {
    queue: EventQueue,
    states: Vec<NodeState>,
    records: Vec<NodeRecord>,
    cluster: ClusterState,
    waiting: Vec<NodeId>,
    waiting_swap: Vec<NodeId>,
    counters: KernelCounters,
    // Relaxation-path buffers: the dense SoA outcome columns, the packed
    // changed/affected masks of an incremental run, the BFS frontier that
    // closes `changed` over descendants, and the per-pred-edge transfer
    // table.
    cols: Columns,
    changed: BitMask,
    affected: BitMask,
    frontier: Vec<u32>,
    pred_transfer: Vec<f64>,
    // Result staging: outcome rows accumulate here and are frozen into one
    // refcounted slab per chunk (batch path) or per result (solo paths).
    rows: Vec<NodeSimOutcome>,
    // Retired result slabs kept for recycling. Once every `SimResult`
    // sharing a slab has been dropped the allocation becomes unique again
    // (`Arc::get_mut` succeeds) and the next freeze of the same length
    // overwrites it in place instead of allocating. Without this, a batch
    // retires its whole band of chunk slabs at once — a contiguous free
    // large enough to make glibc trim the heap top every batch, and the
    // page-fault churn of re-growing it dominated the sequential path.
    slab_pool: Vec<Arc<[NodeSimOutcome]>>,
    // Chain-token state: `id` names this scratch (lazily drawn from
    // `NEXT_SCRATCH_ID`, 0 = unnamed), `cols_epoch` counts column
    // rewrites. Together they let a `BatchSim` prove its anchor's outcome
    // still sits in `cols` and skip the AoS→SoA reload on chained calls.
    id: u64,
    cols_epoch: u64,
}

/// Source of fresh [`SimScratch::id`] values; 0 is reserved for "unnamed".
static NEXT_SCRATCH_ID: AtomicU64 = AtomicU64::new(1);

/// Retired-slab slots a scratch keeps for recycling. Covers the in-flight
/// chunk count of the largest batches the scheduler produces (chunk sizing
/// targets 64 chunks per batch) plus solo-path slabs; overflow slabs simply
/// stay unpooled and free normally.
const SLAB_POOL_CAP: usize = 128;

/// Work counters accumulated by the simulation kernel.
///
/// Plain integer adds on thread-local state — no clocks, no atomics — so
/// they are always on; they cost nothing measurable against the event
/// loop. Counters accumulate across runs (they are *not* cleared by the
/// per-run reset) and are drained with [`SimScratch::take_counters`] when
/// telemetry is attached.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Completed simulations.
    pub sims: u64,
    /// Function invocations successfully placed and started.
    pub node_starts: u64,
    /// Invocations killed by the memory limit.
    pub oom_kills: u64,
    /// Placement attempts that found no host with capacity.
    pub capacity_stalls: u64,
    /// Simulations served by the heap-free relaxation path (full pass).
    pub relaxed_sims: u64,
    /// Simulations served incrementally off an anchor result.
    pub incremental_sims: u64,
    /// Node outcomes copied verbatim from an anchor instead of recomputed.
    pub nodes_reused: u64,
    /// Result-slab allocations: the heap allocations that carry outcome
    /// rows out of the kernel. At most one per chunk on the batch path and
    /// one per result on the solo paths — recycled retired slabs count
    /// zero — so `result_slab_allocs / sims` is the layout-regression
    /// canary `aarc bench` gates on.
    pub result_slab_allocs: u64,
    /// Bytes of `NodeSimOutcome` storage those slabs carried.
    pub result_slab_bytes: u64,
}

impl KernelCounters {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.sims += other.sims;
        self.node_starts += other.node_starts;
        self.oom_kills += other.oom_kills;
        self.capacity_stalls += other.capacity_stalls;
        self.relaxed_sims += other.relaxed_sims;
        self.incremental_sims += other.incremental_sims;
        self.nodes_reused += other.nodes_reused;
        self.result_slab_allocs += other.result_slab_allocs;
        self.result_slab_bytes += other.result_slab_bytes;
    }

    /// Average result-slab heap allocations per completed simulation
    /// (`0.0` before any simulation ran). The chunked batch path sits well
    /// below 1; solo evaluation is exactly 1.
    pub fn allocs_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.result_slab_allocs as f64 / self.sims as f64
        }
    }

    /// Average result-slab bytes per completed simulation (`0.0` before
    /// any simulation ran).
    pub fn bytes_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.result_slab_bytes as f64 / self.sims as f64
        }
    }
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Returns the accumulated kernel counters, resetting them to zero.
    pub fn take_counters(&mut self) -> KernelCounters {
        std::mem::take(&mut self.counters)
    }

    /// Reads the accumulated kernel counters without resetting them.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Identifies the current contents of the outcome columns: `(scratch
    /// identity, relaxation epoch)`. Every [`CompiledScenario::relax_cols`]
    /// run bumps the epoch, so a [`BatchSim`] that recorded the token when
    /// it minted its anchor can later prove the columns still hold exactly
    /// that result — and skip reloading them from the anchor slab.
    fn chain_token(&mut self) -> (u64, u64) {
        if self.id == 0 {
            self.id = NEXT_SCRATCH_ID.fetch_add(1, Ordering::Relaxed);
        }
        (self.id, self.cols_epoch)
    }

    /// Prepares the scratch for one run of `scenario`, reusing every
    /// allocation.
    fn reset(&mut self, scenario: &CompiledScenario) {
        self.queue.clear();
        self.states.clear();
        self.states
            .extend(scenario.pred_counts.iter().map(|&p| NodeState {
                remaining_preds: p,
                ..NodeState::default()
            }));
        self.records.clear();
        self.records.resize(scenario.n, NodeRecord::EMPTY);
        self.cluster.reset(&scenario.cluster);
        self.waiting.clear();
        self.waiting_swap.clear();
    }

    /// Appends the event loop's records to the row staging area and
    /// computes the scalar reductions over the appended rows in node order
    /// (the order every result path uses).
    fn stage_records(&mut self) -> RelaxSummary {
        let offset = self.rows.len();
        self.rows
            .extend(self.records.iter().map(|r| NodeSimOutcome {
                start_ms: r.start_ms,
                end_ms: r.end_ms,
                runtime_ms: r.runtime_ms,
                cost: r.cost,
                oom: r.oom,
            }));
        let fresh = &self.rows[offset..];
        RelaxSummary {
            makespan_ms: fresh.iter().map(|e| e.end_ms).fold(0.0, f64::max),
            total_cost: fresh.iter().map(|e| e.cost).sum(),
            any_oom: fresh.iter().any(|e| e.oom),
        }
    }

    /// Freezes the staged rows into one refcounted slab — at most one heap
    /// allocation (plus memcpy) per freeze, counted against
    /// [`KernelCounters::result_slab_allocs`].
    ///
    /// Prefers recycling: a pooled slab whose every result has been
    /// dropped is overwritten wholesale and handed out again, allocating
    /// nothing. Slabs still referenced by live results (or pinned by the
    /// memo-cache) are never touched — `Arc::get_mut` proves uniqueness —
    /// so recycling cannot alter any observable result bytes.
    fn freeze_rows(&mut self) -> Arc<[NodeSimOutcome]> {
        let mut dead = None;
        for (i, slot) in self.slab_pool.iter_mut().enumerate() {
            if slot.len() == self.rows.len() {
                if let Some(buf) = Arc::get_mut(slot) {
                    buf.copy_from_slice(&self.rows);
                    return Arc::clone(slot);
                }
            } else if Arc::get_mut(slot).is_some() {
                // A retired slab of the wrong length: remember it as the
                // replacement victim so the pool adapts when chunk or
                // workflow sizes change.
                dead.get_or_insert(i);
            }
        }
        let slab: Arc<[NodeSimOutcome]> = self.rows.as_slice().into();
        self.counters.result_slab_allocs += 1;
        self.counters.result_slab_bytes +=
            (slab.len() * std::mem::size_of::<NodeSimOutcome>()) as u64;
        if !slab.is_empty() {
            if self.slab_pool.len() < SLAB_POOL_CAP {
                self.slab_pool.push(Arc::clone(&slab));
            } else if let Some(i) = dead {
                self.slab_pool[i] = Arc::clone(&slab);
            }
        }
        slab
    }

    /// Mints a solo result from the staged rows (offset 0, own slab).
    fn mint_staged(&mut self, summary: RelaxSummary, input: InputSpec, seed: u64) -> SimResult {
        let len = self.rows.len() as u32;
        let slab = self.freeze_rows();
        SimResult {
            slab,
            offset: 0,
            len,
            makespan_ms: summary.makespan_ms,
            total_cost: summary.total_cost,
            any_oom: summary.any_oom,
            input,
            seed,
        }
    }
}

/// A [`WorkflowEnvironment`](crate::env::WorkflowEnvironment) compiled for
/// repeated simulation: static structure precomputed once, hot loops free of
/// hashing, edge-list scans and `String` traffic.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    n: usize,
    /// CSR offsets into `succ_targets` / `succ_effective_mb`, length `n+1`.
    succ_offsets: Vec<u32>,
    /// Flattened successor lists, in the DAG's insertion order (the order
    /// the executor has always walked them, which fixes event tie-breaking).
    succ_targets: Vec<u32>,
    /// Per-edge pre-resolved transfer payload: the edge payload already
    /// divided by fan-out (scatter) or fan-in (gather), so runtime transfer
    /// latency is `transfer_ms(effective_mb * input_scale)`.
    succ_effective_mb: Vec<f64>,
    /// Transpose of the successor CSR: offsets into `pred_sources` /
    /// `pred_effective_mb`, length `n+1`. The relaxation path pulls each
    /// node's ready time from its predecessors instead of pushing events.
    pred_offsets: Vec<u32>,
    pred_sources: Vec<u32>,
    /// Per-pred-edge effective payload, mirroring `succ_effective_mb`.
    pred_effective_mb: Vec<f64>,
    /// One fixed topological order (Kahn over the successor CSR, entries
    /// first in source order).
    topo_order: Vec<u32>,
    pred_counts: Vec<u32>,
    entries: Vec<u32>,
    /// Flat node-indexed profile table (replaces the per-start `HashMap`
    /// lookup).
    profiles: Vec<FunctionProfile>,
    /// Function names, interned once; only read when a full report is
    /// materialised.
    names: Vec<String>,
    cluster: ClusterSpec,
    pricing: PricingModel,
}

impl CompiledScenario {
    /// Compiles the static half of a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::MissingProfile`] if any function lacks a
    /// performance profile (environments built through
    /// [`WorkflowEnvironment::builder`](crate::env::WorkflowEnvironment::builder)
    /// have already validated this).
    pub fn compile(
        workflow: &Workflow,
        profiles: &ProfileSet,
        cluster: ClusterSpec,
        pricing: PricingModel,
    ) -> Result<Self, SimulatorError> {
        let n = workflow.len();
        let dag = workflow.dag();

        let mut flat_profiles = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for id in workflow.node_ids() {
            let Some(profile) = profiles.get(id) else {
                return Err(SimulatorError::MissingProfile {
                    node: id,
                    name: workflow.function(id).name().to_owned(),
                });
            };
            flat_profiles.push(profile.clone());
            names.push(workflow.function(id).name().to_owned());
        }

        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut succ_targets = Vec::with_capacity(dag.edge_count());
        let mut succ_effective_mb = Vec::with_capacity(dag.edge_count());
        succ_offsets.push(0u32);
        for id in workflow.node_ids() {
            let fanout = dag.successors(id).len().max(1) as f64;
            for &succ in dag.successors(id) {
                // Pre-resolve the communication pattern exactly as
                // `edge_transfer_ms` always has; a DAG edge without metadata
                // contributes a zero payload (and therefore zero latency).
                let effective_mb = match workflow.edge(id, succ) {
                    None => 0.0,
                    Some(edge) => {
                        let fanin = dag.predecessors(succ).len().max(1) as f64;
                        match edge.kind {
                            CommunicationKind::Direct | CommunicationKind::Broadcast => {
                                edge.payload_mb
                            }
                            CommunicationKind::Scatter => edge.payload_mb / fanout,
                            CommunicationKind::Gather => edge.payload_mb / fanin,
                        }
                    }
                };
                succ_targets.push(succ.index() as u32);
                succ_effective_mb.push(effective_mb);
            }
            succ_offsets.push(succ_targets.len() as u32);
        }

        let pred_counts: Vec<u32> = workflow
            .node_ids()
            .map(|id| dag.predecessors(id).len() as u32)
            .collect();
        let entries: Vec<u32> = dag.sources().iter().map(|id| id.index() as u32).collect();

        // Transpose the successor CSR into a predecessor CSR, preserving
        // each target's incoming-edge order (source order).
        let mut pred_offsets = vec![0u32; n + 1];
        for &t in &succ_targets {
            pred_offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut cursor: Vec<u32> = pred_offsets[..n].to_vec();
        let mut pred_sources = vec![0u32; succ_targets.len()];
        let mut pred_effective_mb = vec![0.0f64; succ_targets.len()];
        for src in 0..n {
            let lo = succ_offsets[src] as usize;
            let hi = succ_offsets[src + 1] as usize;
            for k in lo..hi {
                let t = succ_targets[k] as usize;
                let slot = cursor[t] as usize;
                pred_sources[slot] = src as u32;
                pred_effective_mb[slot] = succ_effective_mb[k];
                cursor[t] += 1;
            }
        }

        // One fixed topological order: Kahn's algorithm over the successor
        // CSR, seeded with the entries in source order. The workflow is
        // acyclic by construction, so the order always covers every node.
        let mut topo_order: Vec<u32> = Vec::with_capacity(n);
        topo_order.extend_from_slice(&entries);
        let mut remaining = pred_counts.clone();
        let mut head = 0;
        while head < topo_order.len() {
            let i = topo_order[head] as usize;
            head += 1;
            let lo = succ_offsets[i] as usize;
            let hi = succ_offsets[i + 1] as usize;
            for &t in &succ_targets[lo..hi] {
                remaining[t as usize] -= 1;
                if remaining[t as usize] == 0 {
                    topo_order.push(t);
                }
            }
        }
        debug_assert_eq!(topo_order.len(), n, "workflow DAGs are acyclic");

        Ok(CompiledScenario {
            n,
            succ_offsets,
            succ_targets,
            succ_effective_mb,
            pred_offsets,
            pred_sources,
            pred_effective_mb,
            topo_order,
            pred_counts,
            entries,
            profiles: flat_profiles,
            names,
            cluster,
            pricing,
        })
    }

    /// Number of workflow functions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the scenario has no functions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The cluster the scenario simulates.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Runs one simulation and returns the lean [`SimResult`] — the hot
    /// path of every search method.
    ///
    /// Routes automatically: the heap-free topological relaxation when it
    /// is provably bit-identical ([`CompiledScenario::relaxation_exact`]),
    /// the reference event loop otherwise. Either way the result is
    /// bit-identical to [`CompiledScenario::simulate_reference`].
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::ConfigCountMismatch`] when `configs` does
    /// not cover every function and [`SimulatorError::Unplaceable`] when a
    /// configuration exceeds every cluster host.
    pub fn simulate(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        if self.relaxation_exact(configs) {
            self.validate(configs)?;
            let mut transfer = std::mem::take(&mut scratch.pred_transfer);
            self.fill_pred_transfer(input, &mut transfer);
            scratch.rows.clear();
            let summary = self.relax_cols(scratch, configs.as_slice(), input, &transfer, None);
            scratch.pred_transfer = transfer;
            return Ok(scratch.mint_staged(summary, input, seed));
        }
        self.simulate_reference(scratch, configs, input, seed)
    }

    /// Runs one simulation through the reference discrete-event loop,
    /// bypassing the relaxation fast path. This is the pre-round-two
    /// `simulate`: [`CompiledScenario::simulate`] routes here whenever
    /// exactness can't be proven, and the equivalence proptests and the
    /// bench harness call it directly to measure the fast path against it.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn simulate_reference(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        self.run(scratch, configs, input, seed, None)?;
        scratch.rows.clear();
        // Same reduction order as the pre-compiled executor (node order).
        let summary = scratch.stage_records();
        Ok(scratch.mint_staged(summary, input, seed))
    }

    /// Re-simulates `configs` by reusing `anchor_result`'s timeline for
    /// every node that is not downstream of a configuration change — the
    /// searcher-probe fast path (stagewise `PathConfigState` probes mutate
    /// one path suffix per step, leaving most of the DAG untouched).
    ///
    /// Returns `None` when incremental reuse cannot be *proven*
    /// bit-identical to [`CompiledScenario::simulate`]: runtime jitter
    /// enabled, either configuration at stall risk, an anchor for a
    /// different input, or `configs` invalid (the caller's fallback to
    /// `simulate` then reproduces the validation error). `anchor_result`
    /// must be the result of simulating `anchor_configs` against *this*
    /// scenario — the caller owns that pairing; [`BatchSim`] maintains it
    /// automatically.
    pub fn try_incremental(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
        anchor_configs: &ConfigMap,
        anchor_result: &SimResult,
    ) -> Option<SimResult> {
        if !self.relaxation_exact(configs)
            || !self.relaxation_exact_slice(anchor_configs.as_slice())
            || anchor_result.len() != self.n
            || anchor_result.input() != input
            || self.validate(configs).is_err()
        {
            return None;
        }
        let mut transfer = std::mem::take(&mut scratch.pred_transfer);
        self.fill_pred_transfer(input, &mut transfer);
        scratch.cols.load(anchor_result.executions());
        scratch.rows.clear();
        let summary = self.relax_cols(
            scratch,
            configs.as_slice(),
            input,
            &transfer,
            Some(anchor_configs.as_slice()),
        );
        scratch.pred_transfer = transfer;
        Some(scratch.mint_staged(summary, input, seed))
    }

    /// Returns `true` when the topological relaxation path is *provably*
    /// bit-identical to the event loop for `configs`: runtime jitter is off
    /// (no RNG draws) and a single host alone can absorb the sum of every
    /// function's demand, so first-fit placement can never stall no matter
    /// how executions overlap. Checking one host against the *total* demand
    /// is deliberate — weaker conditions ("all candidates fit somewhere
    /// simultaneously") are unsound under first-fit fragmentation. The
    /// memory sum is exact (u32 demands summed in u64); the vCPU sum keeps
    /// [`NO_STALL_VCPU_MARGIN`] of headroom for f64 accumulation drift.
    pub fn relaxation_exact(&self, configs: &ConfigMap) -> bool {
        configs.len() == self.n && self.relaxation_exact_slice(configs.as_slice())
    }

    fn relaxation_exact_slice(&self, configs: &[ResourceConfig]) -> bool {
        if self.cluster.runtime_jitter > 0.0 || self.cluster.hosts == 0 || configs.len() != self.n {
            return false;
        }
        let mut vcpu = 0.0f64;
        let mut memory_mb = 0u64;
        for cfg in configs {
            vcpu += cfg.vcpu.get();
            memory_mb += u64::from(cfg.memory.get());
        }
        vcpu + NO_STALL_VCPU_MARGIN <= self.cluster.vcpus_per_host
            && memory_mb <= u64::from(self.cluster.memory_mb_per_host)
    }

    /// Validates `configs` exactly as the event loop always has: count
    /// first, then per-node host fit in node order (first failing node
    /// named in the error).
    fn validate(&self, configs: &ConfigMap) -> Result<(), SimulatorError> {
        if configs.len() != self.n {
            return Err(SimulatorError::ConfigCountMismatch {
                expected: self.n,
                got: configs.len(),
            });
        }
        for (i, &cfg) in configs.as_slice().iter().enumerate() {
            if !self.cluster.can_fit(cfg) {
                return Err(SimulatorError::Unplaceable {
                    node: NodeId::new(i),
                });
            }
        }
        Ok(())
    }

    /// Precomputes the per-pred-edge transfer latency table for `input`,
    /// indexed like `pred_sources`. The table depends only on the input
    /// scale, so one fill serves every candidate of a batch.
    fn fill_pred_transfer(&self, input: InputSpec, table: &mut Vec<f64>) {
        let transfer_scale = input.scale.max(0.0);
        table.clear();
        table.extend(
            self.pred_effective_mb
                .iter()
                .map(|&mb| self.cluster.transfer_ms(mb * transfer_scale)),
        );
    }

    /// The heap-free relaxation core, round-three form: one in-place pass
    /// over the dense outcome columns. Preconditions (enforced by
    /// callers): `validate(configs)` passed, `configs` — and the anchor's
    /// configs, when editing — satisfy
    /// [`CompiledScenario::relaxation_exact`], the anchor was produced
    /// under the same `input`, and on the edit path `scratch.cols` holds
    /// the anchor's outcome columns. Under those preconditions every
    /// function starts the tick its last input arrives, so one pass in
    /// topological order performs the same floating-point operations in
    /// the same order as the event loop's `try_start`. The ready time is a
    /// branch-light `f64` max-reduction over the predecessor CSR —
    /// `ms_to_ticks` is monotone non-decreasing, so
    /// `max(ms_to_ticks(pred.end + transfer)) =
    /// ms_to_ticks(max(pred.end + transfer))` and hoisting the conversion
    /// out of the loop is bit-exact; then `start = ticks_to_ms(ready)` and
    /// `end = (start + cold_start) + runtime` exactly as before.
    ///
    /// Leaves the candidate's outcome in `scratch.cols` (so a batch chains
    /// it as the next candidate's anchor without any copying), appends the
    /// candidate's `NodeSimOutcome` rows to `scratch.rows` in the same
    /// pass (a fused store next to the column stores, cheaper than a
    /// separate SoA→AoS scatter), and returns the scalar reductions;
    /// callers freeze the staged rows and mint the result.
    fn relax_cols(
        &self,
        scratch: &mut SimScratch,
        cfgs: &[ResourceConfig],
        input: InputSpec,
        transfer_ms: &[f64],
        edit: Option<&[ResourceConfig]>,
    ) -> RelaxSummary {
        let n = self.n;
        scratch.cols_epoch += 1;
        let SimScratch {
            cols,
            changed,
            affected,
            frontier,
            counters,
            rows,
            ..
        } = scratch;

        // The candidate's result row is written in the same pass as the
        // columns (one store next to the column stores beats a separate
        // SoA→AoS scatter over the whole chunk).
        let base = rows.len();

        let mut reused = 0u64;
        match edit {
            None => {
                rows.resize(
                    base + n,
                    NodeSimOutcome {
                        start_ms: 0.0,
                        end_ms: 0.0,
                        runtime_ms: 0.0,
                        cost: 0.0,
                        oom: false,
                    },
                );
                let seg = &mut rows[base..];
                // Full pass: every node recomputed, no masks consulted.
                cols.reset(n);
                for &t in &self.topo_order {
                    let i = t as usize;
                    let lo = self.pred_offsets[i] as usize;
                    let hi = self.pred_offsets[i + 1] as usize;
                    let mut latest = f64::NEG_INFINITY;
                    for (&src, &edge_ms) in
                        self.pred_sources[lo..hi].iter().zip(&transfer_ms[lo..hi])
                    {
                        latest = latest.max(cols.end_ms[src as usize] + edge_ms);
                    }
                    let ready_ticks: SimTime = if hi > lo { ms_to_ticks(latest) } else { 0 };
                    let config = cfgs[i];
                    let (runtime_ms, oom) = match self.profiles[i].evaluate(config, input) {
                        InvocationOutcome::Completed { runtime_ms } => (runtime_ms, false),
                        InvocationOutcome::OutOfMemory { .. } => (OOM_KILL_MS, true),
                    };
                    let cost = self.pricing.invocation_cost(config, runtime_ms);
                    let start_ms = ticks_to_ms(ready_ticks);
                    let end_ms = start_ms + self.cluster.cold_start.latency_ms(config) + runtime_ms;
                    cols.start_ms[i] = start_ms;
                    cols.end_ms[i] = end_ms;
                    cols.runtime_ms[i] = runtime_ms;
                    cols.cost[i] = cost;
                    cols.oom.assign(i, oom);
                    seg[i] = NodeSimOutcome {
                        start_ms,
                        end_ms,
                        runtime_ms,
                        cost,
                        oom,
                    };
                }
            }
            Some(anchor_cfgs) => {
                debug_assert_eq!(cols.len(), n, "edit requires anchor columns");
                // `changed`: nodes whose profile must be re-evaluated.
                // `affected`: changed ∪ descendants(changed) — nodes whose
                // timeline must be recomputed. Everything else keeps its
                // anchor entry, untouched in place.
                changed.reset(n);
                for i in 0..n {
                    let (a, b) = (cfgs[i], anchor_cfgs[i]);
                    if a.vcpu.get().to_bits() != b.vcpu.get().to_bits()
                        || a.memory.get() != b.memory.get()
                    {
                        changed.set(i);
                    }
                }
                affected.copy_from(changed);
                frontier.clear();
                frontier.extend((0..n as u32).filter(|&i| changed.get(i as usize)));
                while let Some(node) = frontier.pop() {
                    let lo = self.succ_offsets[node as usize] as usize;
                    let hi = self.succ_offsets[node as usize + 1] as usize;
                    for &succ in &self.succ_targets[lo..hi] {
                        if !affected.get(succ as usize) {
                            affected.set(succ as usize);
                            frontier.push(succ);
                        }
                    }
                }
                reused = n as u64 - affected.count_ones();

                if reused > 0 {
                    // Append the anchor's rows for every node in one
                    // branch-free column sweep — reused nodes are now
                    // final, and the loop below overwrites the recomputed
                    // ones. This beats a per-node `affected` test (and a
                    // default-fill resize) on the suffix-edit chains where
                    // most of the workflow is reused.
                    rows.extend(
                        cols.start_ms
                            .iter()
                            .zip(&cols.end_ms)
                            .zip(&cols.runtime_ms)
                            .zip(&cols.cost)
                            .enumerate()
                            .map(|(i, (((&start_ms, &end_ms), &runtime_ms), &cost))| {
                                NodeSimOutcome {
                                    start_ms,
                                    end_ms,
                                    runtime_ms,
                                    cost,
                                    oom: cols.oom.get(i),
                                }
                            }),
                    );
                } else {
                    // Every node is affected: the loop below writes each
                    // row exactly once, so a cheap default fill suffices.
                    rows.resize(
                        base + n,
                        NodeSimOutcome {
                            start_ms: 0.0,
                            end_ms: 0.0,
                            runtime_ms: 0.0,
                            cost: 0.0,
                            oom: false,
                        },
                    );
                }
                let seg = &mut rows[base..];

                for &t in &self.topo_order {
                    let i = t as usize;
                    if !affected.get(i) {
                        continue;
                    }
                    let lo = self.pred_offsets[i] as usize;
                    let hi = self.pred_offsets[i + 1] as usize;
                    let mut latest = f64::NEG_INFINITY;
                    for (&src, &edge_ms) in
                        self.pred_sources[lo..hi].iter().zip(&transfer_ms[lo..hi])
                    {
                        latest = latest.max(cols.end_ms[src as usize] + edge_ms);
                    }
                    let ready_ticks: SimTime = if hi > lo { ms_to_ticks(latest) } else { 0 };
                    let config = cfgs[i];
                    let (runtime_ms, cost, oom) = if changed.get(i) {
                        let (runtime_ms, oom) = match self.profiles[i].evaluate(config, input) {
                            InvocationOutcome::Completed { runtime_ms } => (runtime_ms, false),
                            InvocationOutcome::OutOfMemory { .. } => (OOM_KILL_MS, true),
                        };
                        (
                            runtime_ms,
                            self.pricing.invocation_cost(config, runtime_ms),
                            oom,
                        )
                    } else {
                        // Same config, no jitter: runtime, cost and the OOM
                        // verdict are pure functions of (config, input) —
                        // keep the anchor's, still sitting in the columns.
                        (cols.runtime_ms[i], cols.cost[i], cols.oom.get(i))
                    };
                    let start_ms = ticks_to_ms(ready_ticks);
                    let end_ms = start_ms + self.cluster.cold_start.latency_ms(config) + runtime_ms;
                    cols.start_ms[i] = start_ms;
                    cols.end_ms[i] = end_ms;
                    cols.runtime_ms[i] = runtime_ms;
                    cols.cost[i] = cost;
                    cols.oom.assign(i, oom);
                    seg[i] = NodeSimOutcome {
                        start_ms,
                        end_ms,
                        runtime_ms,
                        cost,
                        oom,
                    };
                }
            }
        }

        // Same reduction order as the event loop (node order), now as flat
        // column sweeps.
        let makespan_ms = cols.end_ms.iter().copied().fold(0.0, f64::max);
        let total_cost = cols.cost.iter().sum();
        let any_oom = cols.oom.any();

        // Counter semantics mirror a full event-loop run of the same
        // simulated world: every function "starts" once, OOM verdicts
        // included, plus the round-two accounting of which path served it.
        counters.sims += 1;
        counters.node_starts += n as u64;
        counters.oom_kills += cols.oom.count_ones();
        if edit.is_some() {
            counters.incremental_sims += 1;
            counters.nodes_reused += reused;
        } else {
            counters.relaxed_sims += 1;
        }

        RelaxSummary {
            makespan_ms,
            total_cost,
            any_oom,
        }
    }

    /// Runs one simulation recording the full event trace and materialises
    /// the complete [`ExecutionReport`] (names included). The cold path:
    /// used for search winners, CLI `run` output and direct
    /// [`execute_workflow`](crate::executor::execute_workflow) calls.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn simulate_report(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        let mut trace = ExecutionTrace::new();
        self.run(scratch, configs, input, seed, Some(&mut trace))?;
        let executions: Vec<FunctionExecution> = scratch
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| FunctionExecution {
                node: NodeId::new(i),
                name: self.names[i].clone(),
                config: r.config,
                host: r.host,
                ready_ms: r.ready_ms,
                start_ms: r.start_ms,
                end_ms: r.end_ms,
                runtime_ms: r.runtime_ms,
                cold_start_ms: r.cold_start_ms,
                cost: r.cost,
                oom: r.oom,
            })
            .collect();
        let makespan_ms = executions.iter().map(|e| e.end_ms).fold(0.0, f64::max);
        let total_cost = executions.iter().map(|e| e.cost).sum();
        let any_oom = executions.iter().any(|e| e.oom);
        Ok(ExecutionReport::from_parts(
            executions,
            makespan_ms,
            total_cost,
            any_oom,
            trace,
        ))
    }

    /// The discrete-event loop shared by both result paths. Leaves the
    /// per-node records in `scratch`; `trace` is `None` on the hot path.
    fn run(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
        mut trace: Option<&mut ExecutionTrace>,
    ) -> Result<(), SimulatorError> {
        self.validate(configs)?;

        scratch.reset(self);
        // The jitter RNG is only constructed when draws will actually
        // happen; the draw order (one per started, non-OOM function, in
        // start order) is identical to the pre-compiled executor.
        let mut rng = (self.cluster.runtime_jitter > 0.0).then(|| StdRng::seed_from_u64(seed));
        let transfer_scale = input.scale.max(0.0);

        for &entry in &self.entries {
            scratch
                .queue
                .push(0, Event::FunctionReady(NodeId::new(entry as usize)));
        }

        while let Some((now, event)) = scratch.queue.pop() {
            match event {
                Event::FunctionReady(node) => {
                    let i = node.index();
                    if scratch.states[i].started {
                        continue;
                    }
                    scratch.states[i].ready_at_ticks = now;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Ready {
                            at_ms: ticks_to_ms(now),
                            node,
                        });
                    }
                    let started =
                        self.try_start(scratch, configs, input, &mut rng, node, now, &mut trace);
                    if !started {
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent::QueuedForCapacity {
                                at_ms: ticks_to_ms(now),
                                node,
                            });
                        }
                        scratch.waiting.push(node);
                    }
                }
                Event::FunctionFinished(node) => {
                    let i = node.index();
                    if scratch.states[i].finished {
                        continue;
                    }
                    scratch.states[i].finished = true;
                    let record = scratch.records[i];
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Finished {
                            at_ms: record.end_ms,
                            node,
                            runtime_ms: record.runtime_ms,
                        });
                    }
                    scratch.cluster.release(record.host, record.config);

                    // Wake up successors whose dependencies are now
                    // satisfied: a CSR walk with table-lookup transfers.
                    let lo = self.succ_offsets[i] as usize;
                    let hi = self.succ_offsets[i + 1] as usize;
                    for k in lo..hi {
                        let succ = self.succ_targets[k] as usize;
                        let transfer_ms = self
                            .cluster
                            .transfer_ms(self.succ_effective_mb[k] * transfer_scale);
                        let arrive = ms_to_ticks(record.end_ms + transfer_ms);
                        let st = &mut scratch.states[succ];
                        st.ready_at_ticks = st.ready_at_ticks.max(arrive);
                        st.remaining_preds -= 1;
                        if st.remaining_preds == 0 {
                            scratch
                                .queue
                                .push(st.ready_at_ticks, Event::FunctionReady(NodeId::new(succ)));
                        }
                    }

                    // Capacity was released: retry queued functions in FIFO
                    // order at the current time, double-buffering the wait
                    // queue instead of allocating a fresh vector.
                    let mut pending = std::mem::take(&mut scratch.waiting_swap);
                    std::mem::swap(&mut pending, &mut scratch.waiting);
                    for &waiting_node in &pending {
                        let started = self.try_start(
                            scratch,
                            configs,
                            input,
                            &mut rng,
                            waiting_node,
                            now,
                            &mut trace,
                        );
                        if !started {
                            scratch.waiting.push(waiting_node);
                        }
                    }
                    pending.clear();
                    scratch.waiting_swap = pending;
                }
            }
        }

        debug_assert!(
            scratch.states.iter().all(|s| s.finished),
            "every function of an acyclic workflow must eventually run"
        );
        scratch.counters.sims += 1;
        Ok(())
    }

    /// Starts `node` at `now_ticks` if a host has capacity; returns `true`
    /// on success. Mirrors the pre-compiled executor's `start_fn` exactly.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        rng: &mut Option<StdRng>,
        node: NodeId,
        now_ticks: SimTime,
        trace: &mut Option<&mut ExecutionTrace>,
    ) -> bool {
        let i = node.index();
        let config = configs.get(node);
        let Some(host) = scratch.cluster.try_place(config) else {
            scratch.counters.capacity_stalls += 1;
            return false;
        };
        let profile = &self.profiles[i];
        let cold_start_ms = self.cluster.cold_start.latency_ms(config);
        let outcome = profile.evaluate(config, input);
        let (runtime_ms, oom) = match outcome {
            InvocationOutcome::Completed { runtime_ms } => {
                let jitter = if self.cluster.runtime_jitter > 0.0 {
                    let draw = rng.as_mut().expect("jitter implies an RNG").gen::<f64>();
                    1.0 + self.cluster.runtime_jitter * (draw * 2.0 - 1.0)
                } else {
                    1.0
                };
                (runtime_ms * jitter, false)
            }
            InvocationOutcome::OutOfMemory { required_mb } => {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::OomKilled {
                        at_ms: ticks_to_ms(now_ticks),
                        node,
                        required_mb,
                    });
                }
                (OOM_KILL_MS, true)
            }
        };
        let start_ms = ticks_to_ms(now_ticks);
        let end_ms = start_ms + cold_start_ms + runtime_ms;
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::Started {
                at_ms: start_ms,
                node,
                host,
                cold_start_ms,
            });
        }
        scratch.records[i] = NodeRecord {
            config,
            host,
            ready_ms: ticks_to_ms(scratch.states[i].ready_at_ticks),
            start_ms,
            end_ms,
            runtime_ms,
            cold_start_ms,
            cost: self.pricing.invocation_cost(config, runtime_ms),
            oom,
        };
        scratch.states[i].started = true;
        scratch.counters.node_starts += 1;
        if oom {
            scratch.counters.oom_kills += 1;
        }
        scratch
            .queue
            .push(ms_to_ticks(end_ms), Event::FunctionFinished(node));
        true
    }
}

/// Lockstep batch driver: simulates a stream of candidates against one
/// [`CompiledScenario`] and one input, sharing the per-pred-edge transfer
/// table across the whole batch and chaining each exact result as the
/// incremental anchor for the next candidate — so a run of suffix-edit
/// probes re-simulates only the nodes downstream of each edit.
///
/// Every candidate flows through the cheapest applicable path —
/// incremental relaxation off the previous result, full relaxation, or the
/// reference event loop when exactness can't be proven — and every path is
/// bit-identical, so a `BatchSim` stream equals a
/// [`CompiledScenario::simulate`] stream result-for-result regardless of
/// how a batch is chunked across workers.
#[derive(Debug)]
pub struct BatchSim<'a> {
    scenario: &'a CompiledScenario,
    input: InputSpec,
    transfer_ms: Vec<f64>,
    anchor_configs: Vec<ResourceConfig>,
    anchor: Option<SimResult>,
    /// Chain token recorded when `anchor` was minted: while the scratch
    /// passed to the next call still matches, its columns provably hold
    /// the anchor's outcome and the AoS->SoA reload is skipped.
    anchor_cols: Option<(u64, u64)>,
}

impl<'a> BatchSim<'a> {
    /// Prepares a batch against `scenario` at `input`, computing the shared
    /// transfer table once.
    pub fn new(scenario: &'a CompiledScenario, input: InputSpec) -> Self {
        let mut transfer_ms = Vec::new();
        scenario.fill_pred_transfer(input, &mut transfer_ms);
        BatchSim {
            scenario,
            input,
            transfer_ms,
            anchor_configs: Vec::new(),
            anchor: None,
            anchor_cols: None,
        }
    }

    /// The scenario this batch runs against.
    pub fn scenario(&self) -> &CompiledScenario {
        self.scenario
    }

    /// Drops the incremental anchor: the next candidate simulates from
    /// scratch. The batch scheduler calls this at chunk boundaries so the
    /// kernel-counter stream is independent of how a batch is split across
    /// workers (chunk boundaries depend only on batch length).
    pub fn clear_anchor(&mut self) {
        self.anchor = None;
        self.anchor_configs.clear();
        self.anchor_cols = None;
    }

    /// Seeds the incremental anchor from an already-computed result — e.g.
    /// a search session's previous probe. Ignored (anchor cleared) unless
    /// the pairing is eligible for exact incremental reuse. `result` must
    /// be the result of simulating `configs` against this batch's scenario.
    pub fn set_anchor(&mut self, configs: &ConfigMap, result: &SimResult) {
        if result.len() == self.scenario.n
            && result.input() == self.input
            && self.scenario.relaxation_exact(configs)
        {
            self.anchor_configs.clear();
            self.anchor_configs.extend_from_slice(configs.as_slice());
            self.anchor = Some(result.clone());
            // Externally-minted result: the columns' contents are unknown.
            self.anchor_cols = None;
        } else {
            self.clear_anchor();
        }
    }

    /// Simulates one candidate through the cheapest exact path, updating
    /// the anchor for the next call. Each result mints its own slab; the
    /// batch scheduler's hot path is [`BatchSim::simulate_chunk`], which
    /// amortises that allocation across a whole chunk.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledScenario::simulate`].
    pub fn simulate(
        &mut self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        if self.scenario.relaxation_exact(configs) {
            self.scenario.validate(configs)?;
            scratch.rows.clear();
            let summary = match self.anchor.as_ref() {
                Some(anchor_result) => {
                    // Chained call with the same scratch: the columns
                    // already hold the anchor's outcome.
                    if self.anchor_cols != Some(scratch.chain_token()) {
                        scratch.cols.load(anchor_result.executions());
                    }
                    self.scenario.relax_cols(
                        scratch,
                        configs.as_slice(),
                        self.input,
                        &self.transfer_ms,
                        Some(self.anchor_configs.as_slice()),
                    )
                }
                None => self.scenario.relax_cols(
                    scratch,
                    configs.as_slice(),
                    self.input,
                    &self.transfer_ms,
                    None,
                ),
            };
            let result = scratch.mint_staged(summary, self.input, seed);
            self.anchor_configs.clear();
            self.anchor_configs.extend_from_slice(configs.as_slice());
            self.anchor = Some(result.clone());
            self.anchor_cols = Some(scratch.chain_token());
            return Ok(result);
        }
        // Exactness can't be proven for this candidate: take the event loop
        // and drop the anchor — a successor could not reuse a potentially
        // stall-contaminated timeline anyway.
        self.clear_anchor();
        self.scenario
            .simulate_reference(scratch, configs, self.input, seed)
    }

    /// Simulates one scheduler chunk of candidates, chaining each exact
    /// result as the next candidate's incremental anchor *in place* (the
    /// outcome columns never leave `scratch`) and staging every outcome
    /// row into one arena that is frozen with a single
    /// `Arc<[NodeSimOutcome]>` allocation — the batch miss path performs
    /// one result-slab heap allocation per chunk, not per simulation.
    ///
    /// Starts from a cleared anchor (chunk boundaries reset the chain so
    /// the result and counter streams depend only on how the batch is
    /// chunked, never on which worker runs a chunk) and leaves the anchor
    /// cleared on return. Per-candidate errors come back in the returned
    /// vector in job order, exactly as a per-candidate
    /// [`BatchSim::simulate`] loop would produce them.
    pub fn simulate_chunk(
        &mut self,
        scratch: &mut SimScratch,
        jobs: &[(&ConfigMap, u64)],
    ) -> Vec<Result<SimResult, SimulatorError>> {
        self.clear_anchor();
        if jobs.is_empty() {
            return Vec::new();
        }
        scratch.rows.clear();
        let mut staged: Vec<Result<(u32, u32, RelaxSummary, u64), SimulatorError>> =
            Vec::with_capacity(jobs.len());
        // Whether `scratch.cols` holds the previous candidate's outcome
        // (then `self.anchor_configs` names its configuration).
        let mut chained = false;
        for &(configs, seed) in jobs {
            if self.scenario.relaxation_exact(configs) {
                if let Err(err) = self.scenario.validate(configs) {
                    // Anchor untouched: the next candidate still chains off
                    // the last successful one, as the per-call loop did.
                    staged.push(Err(err));
                    continue;
                }
                let offset = scratch.rows.len() as u32;
                let summary = {
                    let edit = chained.then_some(self.anchor_configs.as_slice());
                    self.scenario.relax_cols(
                        scratch,
                        configs.as_slice(),
                        self.input,
                        &self.transfer_ms,
                        edit,
                    )
                };
                self.anchor_configs.clear();
                self.anchor_configs.extend_from_slice(configs.as_slice());
                chained = true;
                staged.push(Ok((offset, self.scenario.n as u32, summary, seed)));
            } else {
                // Event-loop fallback: drop the chain (a successor could
                // not reuse a potentially stall-contaminated timeline) but
                // keep staging into the shared chunk arena.
                chained = false;
                self.anchor_configs.clear();
                match self.scenario.run(scratch, configs, self.input, seed, None) {
                    Err(err) => staged.push(Err(err)),
                    Ok(()) => {
                        let offset = scratch.rows.len() as u32;
                        let summary = scratch.stage_records();
                        staged.push(Ok((offset, self.scenario.n as u32, summary, seed)));
                    }
                }
            }
        }
        let slab = scratch.freeze_rows();
        staged
            .into_iter()
            .map(|entry| {
                entry.map(|(offset, len, summary, seed)| SimResult {
                    slab: Arc::clone(&slab),
                    offset,
                    len,
                    makespan_ms: summary.makespan_ms,
                    total_cost: summary.total_cost,
                    any_oom: summary.any_oom,
                    input: self.input,
                    seed,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ColdStartModel;
    use crate::perf_model::FunctionProfile;
    use aarc_workflow::WorkflowBuilder;

    fn scenario_parts(jitter: f64) -> (Workflow, ProfileSet, ClusterSpec) {
        let mut b = WorkflowBuilder::new("kern");
        let a = b.add_function("a");
        let c = b.add_function("b");
        let d = b.add_function("c");
        b.add_edge_with(a, c, 16.0, CommunicationKind::Scatter)
            .unwrap();
        b.add_edge_with(a, d, 16.0, CommunicationKind::Scatter)
            .unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(a, FunctionProfile::builder("a").serial_ms(500.0).build());
        p.insert(
            c,
            FunctionProfile::builder("b")
                .serial_ms(1_000.0)
                .parallel_ms(2_000.0)
                .max_parallelism(2.0)
                .build(),
        );
        p.insert(d, FunctionProfile::builder("c").serial_ms(700.0).build());
        let cluster = ClusterSpec {
            runtime_jitter: jitter,
            cold_start: ColdStartModel::typical(),
            ..ClusterSpec::paper_testbed()
        };
        (wf, p, cluster)
    }

    fn compiled(jitter: f64) -> CompiledScenario {
        let (wf, p, cluster) = scenario_parts(jitter);
        CompiledScenario::compile(&wf, &p, cluster, PricingModel::paper()).unwrap()
    }

    #[test]
    fn simulate_matches_materialised_report_exactly() {
        let scenario = compiled(0.05);
        let mut scratch = SimScratch::new();
        let configs = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        let result = scenario
            .simulate(&mut scratch, &configs, InputSpec::nominal(), 7)
            .unwrap();
        let report = scenario
            .simulate_report(&mut scratch, &configs, InputSpec::nominal(), 7)
            .unwrap();
        assert_eq!(result.makespan_ms(), report.makespan_ms());
        assert_eq!(result.total_cost(), report.total_cost());
        assert_eq!(result.any_oom(), report.any_oom());
        for exec in report.executions() {
            let node = result.execution(exec.node).unwrap();
            assert_eq!(node.start_ms, exec.start_ms);
            assert_eq!(node.end_ms, exec.end_ms);
            assert_eq!(node.runtime_ms, exec.runtime_ms);
            assert_eq!(node.cost, exec.cost);
            assert_eq!(node.oom, exec.oom);
        }
        assert!(!report.trace().is_empty(), "full report carries the trace");
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let scenario = compiled(0.1);
        let mut scratch = SimScratch::new();
        let small = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        let big = ConfigMap::uniform(3, ResourceConfig::new(4.0, 4_096));
        // Interleave differently-shaped runs through one scratch; every
        // result must equal a run on a pristine scratch.
        let r1 = scenario
            .simulate(&mut scratch, &small, InputSpec::nominal(), 1)
            .unwrap();
        let _ = scenario
            .simulate(&mut scratch, &big, InputSpec::new(2.0, 64.0), 2)
            .unwrap();
        let r2 = scenario
            .simulate(&mut scratch, &small, InputSpec::nominal(), 1)
            .unwrap();
        let fresh = scenario
            .simulate(&mut SimScratch::new(), &small, InputSpec::nominal(), 1)
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, fresh);
    }

    #[test]
    fn config_count_mismatch_is_reported_with_both_lengths() {
        let scenario = compiled(0.0);
        let configs = ConfigMap::uniform(1, ResourceConfig::new(1.0, 512));
        let err = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 0)
            .unwrap_err();
        assert_eq!(
            err,
            SimulatorError::ConfigCountMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn unplaceable_config_is_an_error_with_the_node() {
        let scenario = compiled(0.0);
        let mut configs = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        configs.set(NodeId::new(1), ResourceConfig::new(500.0, 512));
        let err = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 0)
            .unwrap_err();
        assert_eq!(
            err,
            SimulatorError::Unplaceable {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn compile_rejects_missing_profiles() {
        let (wf, _, cluster) = scenario_parts(0.0);
        let err =
            CompiledScenario::compile(&wf, &ProfileSet::new(), cluster, PricingModel::paper())
                .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingProfile { .. }));
    }

    #[test]
    fn relaxation_matches_event_loop_bitwise() {
        let scenario = compiled(0.0);
        let configs = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        assert!(scenario.relaxation_exact(&configs));
        let mut scratch = SimScratch::new();
        let fast = scenario
            .simulate(&mut scratch, &configs, InputSpec::new(2.0, 64.0), 9)
            .unwrap();
        let slow = scenario
            .simulate_reference(&mut scratch, &configs, InputSpec::new(2.0, 64.0), 9)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(scratch.counters().relaxed_sims, 1);
        assert_eq!(scratch.counters().sims, 2);
    }

    #[test]
    fn jitter_disables_the_relaxation_path() {
        let scenario = compiled(0.1);
        let configs = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        assert!(!scenario.relaxation_exact(&configs));
    }

    #[test]
    fn stall_risk_disables_the_relaxation_path() {
        let (wf, p, mut cluster) = scenario_parts(0.0);
        // One entry then a 2-wide fan-out of 1-vCPU functions against a
        // 1.5-vCPU host: the second fan-out function must queue.
        cluster.vcpus_per_host = 1.5;
        let scenario = CompiledScenario::compile(&wf, &p, cluster, PricingModel::paper()).unwrap();
        let configs = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        assert!(!scenario.relaxation_exact(&configs));
        let mut scratch = SimScratch::new();
        let routed = scenario
            .simulate(&mut scratch, &configs, InputSpec::nominal(), 0)
            .unwrap();
        let reference = scenario
            .simulate_reference(&mut scratch, &configs, InputSpec::nominal(), 0)
            .unwrap();
        assert_eq!(routed, reference);
        assert!(
            scratch.counters().capacity_stalls > 0,
            "the tightened cluster actually queues"
        );
        assert_eq!(scratch.counters().relaxed_sims, 0);
    }

    #[test]
    fn incremental_resimulation_is_exact() {
        let scenario = compiled(0.0);
        let mut scratch = SimScratch::new();
        let base = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        let anchor = scenario
            .simulate(&mut scratch, &base, InputSpec::nominal(), 1)
            .unwrap();
        let mut edited = base.clone();
        edited.set(NodeId::new(2), ResourceConfig::new(4.0, 2_048));
        let inc = scenario
            .try_incremental(
                &mut scratch,
                &edited,
                InputSpec::nominal(),
                1,
                &base,
                &anchor,
            )
            .expect("jitter-free no-stall candidates are incremental-eligible");
        let full = scenario
            .simulate(&mut scratch, &edited, InputSpec::nominal(), 1)
            .unwrap();
        assert_eq!(inc, full);
        assert_eq!(scratch.counters().incremental_sims, 1);
        assert!(
            scratch.counters().nodes_reused > 0,
            "the untouched prefix is reused"
        );
    }

    #[test]
    fn incremental_refuses_mismatched_inputs() {
        let scenario = compiled(0.0);
        let mut scratch = SimScratch::new();
        let base = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        let anchor = scenario
            .simulate(&mut scratch, &base, InputSpec::nominal(), 1)
            .unwrap();
        assert!(scenario
            .try_incremental(
                &mut scratch,
                &base,
                InputSpec::new(2.0, 64.0),
                1,
                &base,
                &anchor
            )
            .is_none());
    }

    #[test]
    fn batch_sim_stream_matches_individual_simulation() {
        let scenario = compiled(0.0);
        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&scenario, InputSpec::nominal());
        let candidates = [
            ConfigMap::uniform(3, ResourceConfig::new(1.0, 512)),
            ConfigMap::uniform(3, ResourceConfig::new(1.0, 128)),
            // Sum 120 vCPU > 96: stall risk, falls back to the event loop.
            ConfigMap::uniform(3, ResourceConfig::new(40.0, 4_096)),
            ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024)),
        ];
        for (k, configs) in candidates.iter().enumerate() {
            let chained = batch.simulate(&mut scratch, configs, k as u64).unwrap();
            let solo = scenario
                .simulate(
                    &mut SimScratch::new(),
                    configs,
                    InputSpec::nominal(),
                    k as u64,
                )
                .unwrap();
            assert_eq!(chained, solo);
        }
        assert!(scratch.counters().incremental_sims > 0);
    }

    #[test]
    fn chunked_stream_matches_per_call_simulation_with_one_slab_alloc() {
        let scenario = compiled(0.0);
        let candidates = [
            ConfigMap::uniform(3, ResourceConfig::new(1.0, 512)),
            ConfigMap::uniform(3, ResourceConfig::new(1.0, 128)),
            // Sum 120 vCPU > 96: stall risk, falls back to the event loop.
            ConfigMap::uniform(3, ResourceConfig::new(40.0, 4_096)),
            ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024)),
        ];
        let jobs: Vec<(&ConfigMap, u64)> = candidates
            .iter()
            .enumerate()
            .map(|(k, c)| (c, k as u64))
            .collect();

        let mut chunk_scratch = SimScratch::new();
        let mut chunk_batch = BatchSim::new(&scenario, InputSpec::nominal());
        let chunked = chunk_batch.simulate_chunk(&mut chunk_scratch, &jobs);

        let mut solo_scratch = SimScratch::new();
        let mut solo_batch = BatchSim::new(&scenario, InputSpec::nominal());
        for (k, configs) in candidates.iter().enumerate() {
            let solo = solo_batch
                .simulate(&mut solo_scratch, configs, k as u64)
                .unwrap();
            assert_eq!(chunked[k].as_ref().unwrap(), &solo);
        }

        // One arena allocation carried the whole chunk out. The per-call
        // loop mints one slab per result, but the scratch recycles a
        // retired slab as soon as the anchor moves past it and the caller
        // drops the result — so only the first two solo results (the ones
        // pinned as anchor or return value when the next freeze runs)
        // allocated fresh. Everything else — the per-path simulation split
        // included — is identical.
        let a = chunk_scratch.take_counters();
        let b = solo_scratch.take_counters();
        assert_eq!(a.result_slab_allocs, 1, "one slab per chunk");
        assert_eq!(b.result_slab_allocs, 2, "solo slabs recycle once retired");
        let row = std::mem::size_of::<NodeSimOutcome>() as u64;
        assert_eq!(a.result_slab_bytes, a.sims * 3 * row);
        assert_eq!(b.result_slab_bytes, 2 * 3 * row);
        assert_eq!(a.sims, b.sims);
        assert_eq!(a.relaxed_sims, b.relaxed_sims);
        assert_eq!(a.incremental_sims, b.incremental_sims);
        assert_eq!(a.nodes_reused, b.nodes_reused);
        assert!(a.allocs_per_sim() < b.allocs_per_sim());
        assert!(a.bytes_per_sim() > 0.0);
    }

    #[test]
    fn retired_chunk_slabs_are_recycled_without_new_allocations() {
        let scenario = compiled(0.0);
        let candidates = [
            ConfigMap::uniform(3, ResourceConfig::new(1.0, 512)),
            ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024)),
        ];
        let jobs: Vec<(&ConfigMap, u64)> = candidates
            .iter()
            .enumerate()
            .map(|(k, c)| (c, k as u64))
            .collect();
        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&scenario, InputSpec::nominal());
        let first = batch.simulate_chunk(&mut scratch, &jobs);
        assert_eq!(scratch.counters().result_slab_allocs, 1);
        // While the first chunk's results are alive its slab is pinned:
        // re-running the chunk must allocate a second slab...
        let second = batch.simulate_chunk(&mut scratch, &jobs);
        assert_eq!(scratch.counters().result_slab_allocs, 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        // ...but once both are dropped, every further chunk of the same
        // shape recycles a retired slab and allocates nothing.
        drop(first);
        drop(second);
        for pass in 0..4 {
            let again = batch.simulate_chunk(&mut scratch, &jobs);
            assert!(again.iter().all(|r| r.is_ok()), "pass {pass}");
        }
        assert_eq!(scratch.counters().result_slab_allocs, 2);
    }

    #[test]
    fn chunk_errors_come_back_in_job_order() {
        let scenario = compiled(0.0);
        let good = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        let bad = ConfigMap::uniform(3, ResourceConfig::new(500.0, 512));
        let jobs: Vec<(&ConfigMap, u64)> = vec![(&good, 0), (&bad, 1), (&good, 2)];
        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&scenario, InputSpec::nominal());
        let results = batch.simulate_chunk(&mut scratch, &jobs);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &SimulatorError::Unplaceable {
                node: NodeId::new(0)
            }
        );
        // The candidate after the failure still simulates correctly (from
        // a cleared anchor, exactly as the per-call loop would).
        let solo = scenario
            .simulate(&mut SimScratch::new(), &good, InputSpec::nominal(), 2)
            .unwrap();
        assert_eq!(results[2].as_ref().unwrap(), &solo);
    }

    #[test]
    fn empty_chunk_allocates_nothing() {
        let scenario = compiled(0.0);
        let mut scratch = SimScratch::new();
        let mut batch = BatchSim::new(&scenario, InputSpec::nominal());
        assert!(batch.simulate_chunk(&mut scratch, &[]).is_empty());
        assert_eq!(scratch.counters().result_slab_allocs, 0);
    }

    #[test]
    fn bitmask_tracks_tail_bits_exactly() {
        let mut mask = BitMask::default();
        mask.reset(70);
        assert!(!mask.any());
        mask.set(0);
        mask.set(63);
        mask.set(69);
        assert_eq!(mask.count_ones(), 3);
        assert!(mask.get(63) && mask.get(69) && !mask.get(64));
        mask.assign(63, false);
        assert_eq!(mask.count_ones(), 2);
        let mut copy = BitMask::default();
        copy.copy_from(&mask);
        assert_eq!(copy.count_ones(), 2);
        assert!(copy.get(69));
    }

    #[test]
    fn sim_result_accessors() {
        let scenario = compiled(0.0);
        let configs = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        let result = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 3)
            .unwrap();
        assert_eq!(result.len(), 3);
        assert!(!result.is_empty());
        assert_eq!(result.seed(), 3);
        assert_eq!(result.input(), InputSpec::nominal());
        assert!(result.runtime_of(NodeId::new(0)).unwrap() > 0.0);
        assert!(result.cost_of(NodeId::new(0)).unwrap() > 0.0);
        assert!(result.execution(NodeId::new(9)).is_none());
        assert!(result.meets_slo(f64::INFINITY));
        let cheap_clone = result.clone();
        assert_eq!(cheap_clone, result);
    }
}
