//! The zero-allocation simulation kernel.
//!
//! PR 2's `EvalEngine` made candidate evaluation parallel and memoised;
//! profiling showed the remaining per-simulation cost was dominated by
//! avoidable allocation, not modelling: every `execute_workflow` call cloned
//! a `String` name per function, scanned the workflow's edge list linearly
//! per successor wake-up, recorded a trace nobody read, and rebuilt its
//! event heap and state vectors from scratch — and the memo-cache then
//! cloned the full report (names, trace and all) on every hit. This module
//! splits the simulation path into three pieces that eliminate all of that:
//!
//! * [`CompiledScenario`] — everything static about a
//!   [`WorkflowEnvironment`](crate::env::WorkflowEnvironment), precomputed
//!   once: CSR-style successor adjacency over dense `u32` node indices,
//!   per-edge pre-resolved transfer payloads (so edge transfer latency is a
//!   table lookup instead of an `O(E)` scan), flat node-indexed profile and
//!   predecessor-count tables, and function names interned once (read only
//!   when a full report is materialised).
//! * [`SimScratch`] — the reusable per-worker arena: event queue, node
//!   states, execution records, cluster placement state and the capacity
//!   wait queue. A worker resets it between candidates instead of
//!   reallocating; after warm-up a simulation performs no heap allocation
//!   beyond the one `Arc` that carries its result out.
//! * [`SimResult`] — the lean searcher-facing result: makespan, cost, OOM
//!   flag and per-node timings behind an `Arc`, so the memo-cache clones it
//!   with a reference-count bump. No `String`s, no trace. The full
//!   [`ExecutionReport`](crate::executor::ExecutionReport) (names + trace)
//!   is materialised on demand — only for search winners and CLI `run`
//!   output — via [`CompiledScenario::simulate_report`].
//!
//! The kernel is bit-identical to the pre-compiled executor at every seed
//! and thread count: it performs the same floating-point operations in the
//! same order, drives the same event queue with the same tie-breaking, and
//! draws jitter from the same RNG stream (one draw per started,
//! non-OOM-killed function, in start order). The equivalence proptest in
//! `tests/proptest_kernel.rs` and the pinned CLI compare goldens enforce
//! this.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aarc_workflow::{CommunicationKind, NodeId, Workflow};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::cost::PricingModel;
use crate::env::ConfigMap;
use crate::error::SimulatorError;
use crate::event::{ms_to_ticks, ticks_to_ms, Event, EventQueue, SimTime};
use crate::executor::{ExecutionReport, FunctionExecution, OOM_KILL_MS};
use crate::input::InputSpec;
use crate::perf_model::{FunctionProfile, InvocationOutcome, ProfileSet};
use crate::resources::ResourceConfig;
use crate::trace::{ExecutionTrace, TraceEvent};

/// Per-node outcome of one simulation, as observed by the searchers.
///
/// This is the `Copy` row of a [`SimResult`]: only the quantities the
/// search methods actually consume (path budgets, path costs, profiled
/// weights and report rows). Host placement, cold-start latency and the
/// ready timestamp live only in the materialised
/// [`ExecutionReport`](crate::executor::ExecutionReport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSimOutcome {
    /// Time the container started, ms.
    pub start_ms: f64,
    /// Time the function finished, ms.
    pub end_ms: f64,
    /// Billed runtime (excludes queueing and cold start), ms.
    pub runtime_ms: f64,
    /// Billed cost of this invocation.
    pub cost: f64,
    /// Whether the invocation was killed out-of-memory.
    pub oom: bool,
}

/// The lean result of one simulation: what the searchers observe and what
/// the [`EvalEngine`](crate::eval::EvalEngine) memo-cache stores.
///
/// Cloning is a reference-count bump plus a handful of scalars — no
/// `String`s, no trace, no per-node reallocation — which is what makes
/// cache hits nearly free. The result remembers the `(input, seed)` it was
/// produced under so the matching full
/// [`ExecutionReport`](crate::executor::ExecutionReport) can be
/// re-materialised on demand (see
/// [`EvalEngine::materialize_result`](crate::eval::EvalEngine::materialize_result)).
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    nodes: Arc<[NodeSimOutcome]>,
    makespan_ms: f64,
    total_cost: f64,
    any_oom: bool,
    input: InputSpec,
    seed: u64,
}

impl SimResult {
    /// End-to-end latency of the workflow in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Total billed cost over all function invocations.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Whether any function was OOM-killed.
    pub fn any_oom(&self) -> bool {
        self.any_oom
    }

    /// `true` when no function failed and the makespan is within `slo_ms`.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        !self.any_oom && self.makespan_ms <= slo_ms
    }

    /// Per-function outcomes, indexed by node index.
    pub fn executions(&self) -> &[NodeSimOutcome] {
        &self.nodes
    }

    /// The outcome of one function (O(1) — nodes are stored densely).
    pub fn execution(&self, node: NodeId) -> Option<NodeSimOutcome> {
        self.nodes.get(node.index()).copied()
    }

    /// Billed runtime of one function, if it ran.
    pub fn runtime_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.runtime_ms)
    }

    /// Billed cost of one function, if it ran.
    pub fn cost_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.cost)
    }

    /// Number of functions that ran.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the result covers no functions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The input the simulation ran with.
    pub fn input(&self) -> InputSpec {
        self.input
    }

    /// The RNG seed the simulation ran with (only meaningful under runtime
    /// jitter; jitter-free results are seed-independent).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Per-node mutable simulation state, reset between runs.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    remaining_preds: u32,
    ready_at_ticks: SimTime,
    started: bool,
    finished: bool,
}

/// Full per-node record of one run: everything needed to materialise a
/// [`FunctionExecution`] without re-deriving anything.
#[derive(Debug, Clone, Copy)]
struct NodeRecord {
    config: ResourceConfig,
    host: usize,
    ready_ms: f64,
    start_ms: f64,
    end_ms: f64,
    runtime_ms: f64,
    cold_start_ms: f64,
    cost: f64,
    oom: bool,
}

impl NodeRecord {
    const EMPTY: NodeRecord = NodeRecord {
        config: ResourceConfig {
            vcpu: crate::resources::Vcpu(0.0),
            memory: crate::resources::MemoryMb(0),
        },
        host: 0,
        ready_ms: 0.0,
        start_ms: 0.0,
        end_ms: 0.0,
        runtime_ms: 0.0,
        cold_start_ms: 0.0,
        cost: 0.0,
        oom: false,
    };
}

/// The reusable per-worker simulation arena.
///
/// Owns every growable buffer a simulation needs — the event heap, node
/// states, execution records, cluster placement state and the capacity wait
/// queue — so that repeated simulations reuse their allocations instead of
/// rebuilding them. One scratch serves one simulation at a time; the
/// [`EvalEngine`](crate::eval::EvalEngine) keeps a pool of them, one per
/// active worker.
#[derive(Debug, Default)]
pub struct SimScratch {
    queue: EventQueue,
    states: Vec<NodeState>,
    records: Vec<NodeRecord>,
    cluster: ClusterState,
    waiting: Vec<NodeId>,
    waiting_swap: Vec<NodeId>,
    counters: KernelCounters,
}

/// Work counters accumulated by the simulation kernel.
///
/// Plain integer adds on thread-local state — no clocks, no atomics — so
/// they are always on; they cost nothing measurable against the event
/// loop. Counters accumulate across runs (they are *not* cleared by the
/// per-run reset) and are drained with [`SimScratch::take_counters`] when
/// telemetry is attached.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Completed simulations.
    pub sims: u64,
    /// Function invocations successfully placed and started.
    pub node_starts: u64,
    /// Invocations killed by the memory limit.
    pub oom_kills: u64,
    /// Placement attempts that found no host with capacity.
    pub capacity_stalls: u64,
}

impl KernelCounters {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.sims += other.sims;
        self.node_starts += other.node_starts;
        self.oom_kills += other.oom_kills;
        self.capacity_stalls += other.capacity_stalls;
    }
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Returns the accumulated kernel counters, resetting them to zero.
    pub fn take_counters(&mut self) -> KernelCounters {
        std::mem::take(&mut self.counters)
    }

    /// Reads the accumulated kernel counters without resetting them.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Prepares the scratch for one run of `scenario`, reusing every
    /// allocation.
    fn reset(&mut self, scenario: &CompiledScenario) {
        self.queue.clear();
        self.states.clear();
        self.states
            .extend(scenario.pred_counts.iter().map(|&p| NodeState {
                remaining_preds: p,
                ..NodeState::default()
            }));
        self.records.clear();
        self.records.resize(scenario.n, NodeRecord::EMPTY);
        self.cluster.reset(&scenario.cluster);
        self.waiting.clear();
        self.waiting_swap.clear();
    }
}

/// A [`WorkflowEnvironment`](crate::env::WorkflowEnvironment) compiled for
/// repeated simulation: static structure precomputed once, hot loops free of
/// hashing, edge-list scans and `String` traffic.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    n: usize,
    /// CSR offsets into `succ_targets` / `succ_effective_mb`, length `n+1`.
    succ_offsets: Vec<u32>,
    /// Flattened successor lists, in the DAG's insertion order (the order
    /// the executor has always walked them, which fixes event tie-breaking).
    succ_targets: Vec<u32>,
    /// Per-edge pre-resolved transfer payload: the edge payload already
    /// divided by fan-out (scatter) or fan-in (gather), so runtime transfer
    /// latency is `transfer_ms(effective_mb * input_scale)`.
    succ_effective_mb: Vec<f64>,
    pred_counts: Vec<u32>,
    entries: Vec<u32>,
    /// Flat node-indexed profile table (replaces the per-start `HashMap`
    /// lookup).
    profiles: Vec<FunctionProfile>,
    /// Function names, interned once; only read when a full report is
    /// materialised.
    names: Vec<String>,
    cluster: ClusterSpec,
    pricing: PricingModel,
}

impl CompiledScenario {
    /// Compiles the static half of a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::MissingProfile`] if any function lacks a
    /// performance profile (environments built through
    /// [`WorkflowEnvironment::builder`](crate::env::WorkflowEnvironment::builder)
    /// have already validated this).
    pub fn compile(
        workflow: &Workflow,
        profiles: &ProfileSet,
        cluster: ClusterSpec,
        pricing: PricingModel,
    ) -> Result<Self, SimulatorError> {
        let n = workflow.len();
        let dag = workflow.dag();

        let mut flat_profiles = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for id in workflow.node_ids() {
            let Some(profile) = profiles.get(id) else {
                return Err(SimulatorError::MissingProfile {
                    node: id,
                    name: workflow.function(id).name().to_owned(),
                });
            };
            flat_profiles.push(profile.clone());
            names.push(workflow.function(id).name().to_owned());
        }

        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut succ_targets = Vec::with_capacity(dag.edge_count());
        let mut succ_effective_mb = Vec::with_capacity(dag.edge_count());
        succ_offsets.push(0u32);
        for id in workflow.node_ids() {
            let fanout = dag.successors(id).len().max(1) as f64;
            for &succ in dag.successors(id) {
                // Pre-resolve the communication pattern exactly as
                // `edge_transfer_ms` always has; a DAG edge without metadata
                // contributes a zero payload (and therefore zero latency).
                let effective_mb = match workflow.edge(id, succ) {
                    None => 0.0,
                    Some(edge) => {
                        let fanin = dag.predecessors(succ).len().max(1) as f64;
                        match edge.kind {
                            CommunicationKind::Direct | CommunicationKind::Broadcast => {
                                edge.payload_mb
                            }
                            CommunicationKind::Scatter => edge.payload_mb / fanout,
                            CommunicationKind::Gather => edge.payload_mb / fanin,
                        }
                    }
                };
                succ_targets.push(succ.index() as u32);
                succ_effective_mb.push(effective_mb);
            }
            succ_offsets.push(succ_targets.len() as u32);
        }

        Ok(CompiledScenario {
            n,
            succ_offsets,
            succ_targets,
            succ_effective_mb,
            pred_counts: workflow
                .node_ids()
                .map(|id| dag.predecessors(id).len() as u32)
                .collect(),
            entries: dag.sources().iter().map(|id| id.index() as u32).collect(),
            profiles: flat_profiles,
            names,
            cluster,
            pricing,
        })
    }

    /// Number of workflow functions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the scenario has no functions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The cluster the scenario simulates.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Runs one simulation and returns the lean [`SimResult`] — the hot
    /// path of every search method.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::ConfigCountMismatch`] when `configs` does
    /// not cover every function and [`SimulatorError::Unplaceable`] when a
    /// configuration exceeds every cluster host.
    pub fn simulate(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        self.run(scratch, configs, input, seed, None)?;
        let nodes: Arc<[NodeSimOutcome]> = scratch
            .records
            .iter()
            .map(|r| NodeSimOutcome {
                start_ms: r.start_ms,
                end_ms: r.end_ms,
                runtime_ms: r.runtime_ms,
                cost: r.cost,
                oom: r.oom,
            })
            .collect();
        // Same reduction order as the pre-compiled executor (node order).
        let makespan_ms = nodes.iter().map(|e| e.end_ms).fold(0.0, f64::max);
        let total_cost = nodes.iter().map(|e| e.cost).sum();
        let any_oom = nodes.iter().any(|e| e.oom);
        Ok(SimResult {
            nodes,
            makespan_ms,
            total_cost,
            any_oom,
            input,
            seed,
        })
    }

    /// Runs one simulation recording the full event trace and materialises
    /// the complete [`ExecutionReport`] (names included). The cold path:
    /// used for search winners, CLI `run` output and direct
    /// [`execute_workflow`](crate::executor::execute_workflow) calls.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn simulate_report(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        let mut trace = ExecutionTrace::new();
        self.run(scratch, configs, input, seed, Some(&mut trace))?;
        let executions: Vec<FunctionExecution> = scratch
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| FunctionExecution {
                node: NodeId::new(i),
                name: self.names[i].clone(),
                config: r.config,
                host: r.host,
                ready_ms: r.ready_ms,
                start_ms: r.start_ms,
                end_ms: r.end_ms,
                runtime_ms: r.runtime_ms,
                cold_start_ms: r.cold_start_ms,
                cost: r.cost,
                oom: r.oom,
            })
            .collect();
        let makespan_ms = executions.iter().map(|e| e.end_ms).fold(0.0, f64::max);
        let total_cost = executions.iter().map(|e| e.cost).sum();
        let any_oom = executions.iter().any(|e| e.oom);
        Ok(ExecutionReport::from_parts(
            executions,
            makespan_ms,
            total_cost,
            any_oom,
            trace,
        ))
    }

    /// The discrete-event loop shared by both result paths. Leaves the
    /// per-node records in `scratch`; `trace` is `None` on the hot path.
    fn run(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
        mut trace: Option<&mut ExecutionTrace>,
    ) -> Result<(), SimulatorError> {
        if configs.len() != self.n {
            return Err(SimulatorError::ConfigCountMismatch {
                expected: self.n,
                got: configs.len(),
            });
        }
        for (i, &cfg) in configs.as_slice().iter().enumerate() {
            if !self.cluster.can_fit(cfg) {
                return Err(SimulatorError::Unplaceable {
                    node: NodeId::new(i),
                });
            }
        }

        scratch.reset(self);
        // The jitter RNG is only constructed when draws will actually
        // happen; the draw order (one per started, non-OOM function, in
        // start order) is identical to the pre-compiled executor.
        let mut rng = (self.cluster.runtime_jitter > 0.0).then(|| StdRng::seed_from_u64(seed));
        let transfer_scale = input.scale.max(0.0);

        for &entry in &self.entries {
            scratch
                .queue
                .push(0, Event::FunctionReady(NodeId::new(entry as usize)));
        }

        while let Some((now, event)) = scratch.queue.pop() {
            match event {
                Event::FunctionReady(node) => {
                    let i = node.index();
                    if scratch.states[i].started {
                        continue;
                    }
                    scratch.states[i].ready_at_ticks = now;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Ready {
                            at_ms: ticks_to_ms(now),
                            node,
                        });
                    }
                    let started =
                        self.try_start(scratch, configs, input, &mut rng, node, now, &mut trace);
                    if !started {
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent::QueuedForCapacity {
                                at_ms: ticks_to_ms(now),
                                node,
                            });
                        }
                        scratch.waiting.push(node);
                    }
                }
                Event::FunctionFinished(node) => {
                    let i = node.index();
                    if scratch.states[i].finished {
                        continue;
                    }
                    scratch.states[i].finished = true;
                    let record = scratch.records[i];
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEvent::Finished {
                            at_ms: record.end_ms,
                            node,
                            runtime_ms: record.runtime_ms,
                        });
                    }
                    scratch.cluster.release(record.host, record.config);

                    // Wake up successors whose dependencies are now
                    // satisfied: a CSR walk with table-lookup transfers.
                    let lo = self.succ_offsets[i] as usize;
                    let hi = self.succ_offsets[i + 1] as usize;
                    for k in lo..hi {
                        let succ = self.succ_targets[k] as usize;
                        let transfer_ms = self
                            .cluster
                            .transfer_ms(self.succ_effective_mb[k] * transfer_scale);
                        let arrive = ms_to_ticks(record.end_ms + transfer_ms);
                        let st = &mut scratch.states[succ];
                        st.ready_at_ticks = st.ready_at_ticks.max(arrive);
                        st.remaining_preds -= 1;
                        if st.remaining_preds == 0 {
                            scratch
                                .queue
                                .push(st.ready_at_ticks, Event::FunctionReady(NodeId::new(succ)));
                        }
                    }

                    // Capacity was released: retry queued functions in FIFO
                    // order at the current time, double-buffering the wait
                    // queue instead of allocating a fresh vector.
                    let mut pending = std::mem::take(&mut scratch.waiting_swap);
                    std::mem::swap(&mut pending, &mut scratch.waiting);
                    for &waiting_node in &pending {
                        let started = self.try_start(
                            scratch,
                            configs,
                            input,
                            &mut rng,
                            waiting_node,
                            now,
                            &mut trace,
                        );
                        if !started {
                            scratch.waiting.push(waiting_node);
                        }
                    }
                    pending.clear();
                    scratch.waiting_swap = pending;
                }
            }
        }

        debug_assert!(
            scratch.states.iter().all(|s| s.finished),
            "every function of an acyclic workflow must eventually run"
        );
        scratch.counters.sims += 1;
        Ok(())
    }

    /// Starts `node` at `now_ticks` if a host has capacity; returns `true`
    /// on success. Mirrors the pre-compiled executor's `start_fn` exactly.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        &self,
        scratch: &mut SimScratch,
        configs: &ConfigMap,
        input: InputSpec,
        rng: &mut Option<StdRng>,
        node: NodeId,
        now_ticks: SimTime,
        trace: &mut Option<&mut ExecutionTrace>,
    ) -> bool {
        let i = node.index();
        let config = configs.get(node);
        let Some(host) = scratch.cluster.try_place(config) else {
            scratch.counters.capacity_stalls += 1;
            return false;
        };
        let profile = &self.profiles[i];
        let cold_start_ms = self.cluster.cold_start.latency_ms(config);
        let outcome = profile.evaluate(config, input);
        let (runtime_ms, oom) = match outcome {
            InvocationOutcome::Completed { runtime_ms } => {
                let jitter = if self.cluster.runtime_jitter > 0.0 {
                    let draw = rng.as_mut().expect("jitter implies an RNG").gen::<f64>();
                    1.0 + self.cluster.runtime_jitter * (draw * 2.0 - 1.0)
                } else {
                    1.0
                };
                (runtime_ms * jitter, false)
            }
            InvocationOutcome::OutOfMemory { required_mb } => {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::OomKilled {
                        at_ms: ticks_to_ms(now_ticks),
                        node,
                        required_mb,
                    });
                }
                (OOM_KILL_MS, true)
            }
        };
        let start_ms = ticks_to_ms(now_ticks);
        let end_ms = start_ms + cold_start_ms + runtime_ms;
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::Started {
                at_ms: start_ms,
                node,
                host,
                cold_start_ms,
            });
        }
        scratch.records[i] = NodeRecord {
            config,
            host,
            ready_ms: ticks_to_ms(scratch.states[i].ready_at_ticks),
            start_ms,
            end_ms,
            runtime_ms,
            cold_start_ms,
            cost: self.pricing.invocation_cost(config, runtime_ms),
            oom,
        };
        scratch.states[i].started = true;
        scratch.counters.node_starts += 1;
        if oom {
            scratch.counters.oom_kills += 1;
        }
        scratch
            .queue
            .push(ms_to_ticks(end_ms), Event::FunctionFinished(node));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ColdStartModel;
    use crate::perf_model::FunctionProfile;
    use aarc_workflow::WorkflowBuilder;

    fn scenario_parts(jitter: f64) -> (Workflow, ProfileSet, ClusterSpec) {
        let mut b = WorkflowBuilder::new("kern");
        let a = b.add_function("a");
        let c = b.add_function("b");
        let d = b.add_function("c");
        b.add_edge_with(a, c, 16.0, CommunicationKind::Scatter)
            .unwrap();
        b.add_edge_with(a, d, 16.0, CommunicationKind::Scatter)
            .unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(a, FunctionProfile::builder("a").serial_ms(500.0).build());
        p.insert(
            c,
            FunctionProfile::builder("b")
                .serial_ms(1_000.0)
                .parallel_ms(2_000.0)
                .max_parallelism(2.0)
                .build(),
        );
        p.insert(d, FunctionProfile::builder("c").serial_ms(700.0).build());
        let cluster = ClusterSpec {
            runtime_jitter: jitter,
            cold_start: ColdStartModel::typical(),
            ..ClusterSpec::paper_testbed()
        };
        (wf, p, cluster)
    }

    fn compiled(jitter: f64) -> CompiledScenario {
        let (wf, p, cluster) = scenario_parts(jitter);
        CompiledScenario::compile(&wf, &p, cluster, PricingModel::paper()).unwrap()
    }

    #[test]
    fn simulate_matches_materialised_report_exactly() {
        let scenario = compiled(0.05);
        let mut scratch = SimScratch::new();
        let configs = ConfigMap::uniform(3, ResourceConfig::new(2.0, 1_024));
        let result = scenario
            .simulate(&mut scratch, &configs, InputSpec::nominal(), 7)
            .unwrap();
        let report = scenario
            .simulate_report(&mut scratch, &configs, InputSpec::nominal(), 7)
            .unwrap();
        assert_eq!(result.makespan_ms(), report.makespan_ms());
        assert_eq!(result.total_cost(), report.total_cost());
        assert_eq!(result.any_oom(), report.any_oom());
        for exec in report.executions() {
            let node = result.execution(exec.node).unwrap();
            assert_eq!(node.start_ms, exec.start_ms);
            assert_eq!(node.end_ms, exec.end_ms);
            assert_eq!(node.runtime_ms, exec.runtime_ms);
            assert_eq!(node.cost, exec.cost);
            assert_eq!(node.oom, exec.oom);
        }
        assert!(!report.trace().is_empty(), "full report carries the trace");
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let scenario = compiled(0.1);
        let mut scratch = SimScratch::new();
        let small = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        let big = ConfigMap::uniform(3, ResourceConfig::new(4.0, 4_096));
        // Interleave differently-shaped runs through one scratch; every
        // result must equal a run on a pristine scratch.
        let r1 = scenario
            .simulate(&mut scratch, &small, InputSpec::nominal(), 1)
            .unwrap();
        let _ = scenario
            .simulate(&mut scratch, &big, InputSpec::new(2.0, 64.0), 2)
            .unwrap();
        let r2 = scenario
            .simulate(&mut scratch, &small, InputSpec::nominal(), 1)
            .unwrap();
        let fresh = scenario
            .simulate(&mut SimScratch::new(), &small, InputSpec::nominal(), 1)
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, fresh);
    }

    #[test]
    fn config_count_mismatch_is_reported_with_both_lengths() {
        let scenario = compiled(0.0);
        let configs = ConfigMap::uniform(1, ResourceConfig::new(1.0, 512));
        let err = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 0)
            .unwrap_err();
        assert_eq!(
            err,
            SimulatorError::ConfigCountMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn unplaceable_config_is_an_error_with_the_node() {
        let scenario = compiled(0.0);
        let mut configs = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        configs.set(NodeId::new(1), ResourceConfig::new(500.0, 512));
        let err = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 0)
            .unwrap_err();
        assert_eq!(
            err,
            SimulatorError::Unplaceable {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn compile_rejects_missing_profiles() {
        let (wf, _, cluster) = scenario_parts(0.0);
        let err =
            CompiledScenario::compile(&wf, &ProfileSet::new(), cluster, PricingModel::paper())
                .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingProfile { .. }));
    }

    #[test]
    fn sim_result_accessors() {
        let scenario = compiled(0.0);
        let configs = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        let result = scenario
            .simulate(&mut SimScratch::new(), &configs, InputSpec::nominal(), 3)
            .unwrap();
        assert_eq!(result.len(), 3);
        assert!(!result.is_empty());
        assert_eq!(result.seed(), 3);
        assert_eq!(result.input(), InputSpec::nominal());
        assert!(result.runtime_of(NodeId::new(0)).unwrap() > 0.0);
        assert!(result.cost_of(NodeId::new(0)).unwrap() > 0.0);
        assert!(result.execution(NodeId::new(9)).is_none());
        assert!(result.meets_slo(f64::INFINITY));
        let cheap_clone = result.clone();
        assert_eq!(cheap_clone, result);
    }
}
