//! Discrete-event execution of a workflow DAG under a resource
//! configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use aarc_workflow::{CommunicationKind, NodeId, Workflow};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::cost::PricingModel;
use crate::env::ConfigMap;
use crate::error::SimulatorError;
use crate::event::{ms_to_ticks, ticks_to_ms, Event, EventQueue};
use crate::input::InputSpec;
use crate::perf_model::{InvocationOutcome, ProfileSet};
use crate::resources::ResourceConfig;
use crate::trace::{ExecutionTrace, TraceEvent};

/// Billed runtime charged for an invocation that is killed by the OOM
/// supervisor (detection and teardown time).
const OOM_KILL_MS: f64 = 50.0;

/// Per-function outcome of one simulated workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionExecution {
    /// The function.
    pub node: NodeId,
    /// Its name.
    pub name: String,
    /// Configuration it ran with.
    pub config: ResourceConfig,
    /// Host it was placed on.
    pub host: usize,
    /// Time the function became ready (dependencies satisfied), ms.
    pub ready_ms: f64,
    /// Time the container started (after any capacity wait), ms.
    pub start_ms: f64,
    /// Time the function finished, ms.
    pub end_ms: f64,
    /// Billed runtime (excludes queueing and cold start), ms.
    pub runtime_ms: f64,
    /// Cold-start latency paid, ms.
    pub cold_start_ms: f64,
    /// Billed cost of this invocation.
    pub cost: f64,
    /// Whether the invocation was killed out-of-memory.
    pub oom: bool,
}

/// Result of executing a workflow once under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    executions: Vec<FunctionExecution>,
    makespan_ms: f64,
    total_cost: f64,
    any_oom: bool,
    #[serde(skip)]
    trace: ExecutionTrace,
}

impl ExecutionReport {
    /// End-to-end latency of the workflow in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Total billed cost over all function invocations.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Whether any function was OOM-killed.
    pub fn any_oom(&self) -> bool {
        self.any_oom
    }

    /// `true` when no function failed and the makespan is within `slo_ms`.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        !self.any_oom && self.makespan_ms <= slo_ms
    }

    /// Per-function outcomes, ordered by node index.
    pub fn executions(&self) -> &[FunctionExecution] {
        &self.executions
    }

    /// The outcome of one function.
    pub fn execution(&self, node: NodeId) -> Option<&FunctionExecution> {
        self.executions.iter().find(|e| e.node == node)
    }

    /// Billed runtime of one function, if it ran.
    pub fn runtime_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.runtime_ms)
    }

    /// Billed cost of one function, if it ran.
    pub fn cost_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.cost)
    }

    /// The detailed event trace of the execution.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }
}

struct NodeRuntimeState {
    remaining_preds: usize,
    ready_at_ticks: u64,
    started: bool,
    finished: bool,
}

/// Executes `workflow` once under `configs`.
///
/// This is the low-level entry point; most callers use
/// [`WorkflowEnvironment::execute`](crate::env::WorkflowEnvironment::execute)
/// which bundles the static arguments.
///
/// # Errors
///
/// Returns an error if a function lacks a profile or configuration, or if a
/// configuration can never fit on any cluster host.
#[allow(clippy::too_many_arguments)]
pub fn execute_workflow(
    workflow: &Workflow,
    profiles: &ProfileSet,
    configs: &ConfigMap,
    input: InputSpec,
    cluster: &ClusterSpec,
    pricing: &PricingModel,
    seed: u64,
) -> Result<ExecutionReport, SimulatorError> {
    let n = workflow.len();
    if configs.len() != n {
        return Err(SimulatorError::MissingConfig {
            node: NodeId::new(configs.len().min(n)),
        });
    }
    for id in workflow.node_ids() {
        if profiles.get(id).is_none() {
            return Err(SimulatorError::MissingProfile {
                node: id,
                name: workflow.function(id).name().to_owned(),
            });
        }
        if !cluster.can_fit(configs.get(id)) {
            return Err(SimulatorError::Unplaceable { node: id });
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut queue = EventQueue::new();
    let mut cluster_state = ClusterState::new(cluster);
    let mut trace = ExecutionTrace::new();
    let mut waiting: Vec<NodeId> = Vec::new();
    let mut states: Vec<NodeRuntimeState> = workflow
        .node_ids()
        .map(|id| NodeRuntimeState {
            remaining_preds: workflow.dag().predecessors(id).len(),
            ready_at_ticks: 0,
            started: false,
            finished: false,
        })
        .collect();
    let mut executions: Vec<Option<FunctionExecution>> = (0..n).map(|_| None).collect();

    // Entry functions become ready immediately (the request payload arrives
    // with the trigger).
    for id in workflow.entries() {
        queue.push(0, Event::FunctionReady(id));
    }

    // Starts `node` at `now` if a host has capacity; returns true on success.
    let start_fn = |node: NodeId,
                    now_ticks: u64,
                    cluster_state: &mut ClusterState,
                    queue: &mut EventQueue,
                    trace: &mut ExecutionTrace,
                    executions: &mut Vec<Option<FunctionExecution>>,
                    states: &mut Vec<NodeRuntimeState>,
                    rng: &mut StdRng|
     -> bool {
        let config = configs.get(node);
        let Some(host) = cluster_state.try_place(config) else {
            return false;
        };
        let profile = profiles.get(node).expect("validated above");
        let cold_start_ms = cluster.cold_start.latency_ms(config);
        let outcome = profile.evaluate(config, input);
        let (runtime_ms, oom) = match outcome {
            InvocationOutcome::Completed { runtime_ms } => {
                let jitter = if cluster.runtime_jitter > 0.0 {
                    1.0 + cluster.runtime_jitter * (rng.gen::<f64>() * 2.0 - 1.0)
                } else {
                    1.0
                };
                (runtime_ms * jitter, false)
            }
            InvocationOutcome::OutOfMemory { required_mb } => {
                trace.push(TraceEvent::OomKilled {
                    at_ms: ticks_to_ms(now_ticks),
                    node,
                    required_mb,
                });
                (OOM_KILL_MS, true)
            }
        };
        let start_ms = ticks_to_ms(now_ticks);
        let end_ms = start_ms + cold_start_ms + runtime_ms;
        trace.push(TraceEvent::Started {
            at_ms: start_ms,
            node,
            host,
            cold_start_ms,
        });
        executions[node.index()] = Some(FunctionExecution {
            node,
            name: workflow.function(node).name().to_owned(),
            config,
            host,
            ready_ms: ticks_to_ms(states[node.index()].ready_at_ticks),
            start_ms,
            end_ms,
            runtime_ms,
            cold_start_ms,
            cost: pricing.invocation_cost(config, runtime_ms),
            oom,
        });
        states[node.index()].started = true;
        queue.push(ms_to_ticks(end_ms), Event::FunctionFinished(node));
        true
    };

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::FunctionReady(node) => {
                if states[node.index()].started {
                    continue;
                }
                states[node.index()].ready_at_ticks = now;
                trace.push(TraceEvent::Ready {
                    at_ms: ticks_to_ms(now),
                    node,
                });
                let started = start_fn(
                    node,
                    now,
                    &mut cluster_state,
                    &mut queue,
                    &mut trace,
                    &mut executions,
                    &mut states,
                    &mut rng,
                );
                if !started {
                    trace.push(TraceEvent::QueuedForCapacity {
                        at_ms: ticks_to_ms(now),
                        node,
                    });
                    waiting.push(node);
                }
            }
            Event::FunctionFinished(node) => {
                if states[node.index()].finished {
                    continue;
                }
                states[node.index()].finished = true;
                let exec = executions[node.index()]
                    .as_ref()
                    .expect("finished functions have an execution record");
                let finish_ms = exec.end_ms;
                let config = exec.config;
                trace.push(TraceEvent::Finished {
                    at_ms: finish_ms,
                    node,
                    runtime_ms: exec.runtime_ms,
                });
                cluster_state.release(exec.host, config);

                // Wake up successors whose dependencies are now satisfied.
                for &succ in workflow.dag().successors(node) {
                    let transfer_ms = edge_transfer_ms(workflow, cluster, input, node, succ);
                    let arrive = ms_to_ticks(finish_ms + transfer_ms);
                    let st = &mut states[succ.index()];
                    st.ready_at_ticks = st.ready_at_ticks.max(arrive);
                    st.remaining_preds -= 1;
                    if st.remaining_preds == 0 {
                        queue.push(st.ready_at_ticks, Event::FunctionReady(succ));
                    }
                }

                // Capacity was released: retry queued functions in FIFO
                // order at the current time.
                let mut still_waiting = Vec::new();
                for waiting_node in waiting.drain(..) {
                    let started = start_fn(
                        waiting_node,
                        now,
                        &mut cluster_state,
                        &mut queue,
                        &mut trace,
                        &mut executions,
                        &mut states,
                        &mut rng,
                    );
                    if !started {
                        still_waiting.push(waiting_node);
                    }
                }
                waiting = still_waiting;
            }
        }
    }

    let executions: Vec<FunctionExecution> = executions.into_iter().flatten().collect();
    debug_assert_eq!(
        executions.len(),
        n,
        "every function of an acyclic workflow must eventually run"
    );
    let makespan_ms = executions.iter().map(|e| e.end_ms).fold(0.0, f64::max);
    let total_cost = executions.iter().map(|e| e.cost).sum();
    let any_oom = executions.iter().any(|e| e.oom);
    Ok(ExecutionReport {
        executions,
        makespan_ms,
        total_cost,
        any_oom,
        trace,
    })
}

/// Latency of moving the edge payload from `from` to `to`, taking the
/// communication pattern into account.
fn edge_transfer_ms(
    workflow: &Workflow,
    cluster: &ClusterSpec,
    input: InputSpec,
    from: NodeId,
    to: NodeId,
) -> f64 {
    let Some(edge) = workflow.edge(from, to) else {
        return 0.0;
    };
    let fanout = workflow.dag().successors(from).len().max(1) as f64;
    let fanin = workflow.dag().predecessors(to).len().max(1) as f64;
    let effective_mb = match edge.kind {
        CommunicationKind::Direct | CommunicationKind::Broadcast => edge.payload_mb,
        CommunicationKind::Scatter => edge.payload_mb / fanout,
        CommunicationKind::Gather => edge.payload_mb / fanin,
    };
    cluster.transfer_ms(effective_mb * input.scale.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ConfigMap;
    use crate::perf_model::FunctionProfile;
    use aarc_workflow::WorkflowBuilder;

    fn two_step_workflow() -> (Workflow, ProfileSet) {
        let mut b = WorkflowBuilder::new("two");
        let a = b.add_function("first");
        let c = b.add_function("second");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            a,
            FunctionProfile::builder("first").serial_ms(1_000.0).build(),
        );
        profiles.insert(
            c,
            FunctionProfile::builder("second")
                .serial_ms(2_000.0)
                .build(),
        );
        (wf, profiles)
    }

    fn run(
        wf: &Workflow,
        profiles: &ProfileSet,
        configs: &ConfigMap,
        cluster: &ClusterSpec,
    ) -> ExecutionReport {
        execute_workflow(
            wf,
            profiles,
            configs,
            InputSpec::nominal(),
            cluster,
            &PricingModel::paper(),
            42,
        )
        .unwrap()
    }

    #[test]
    fn sequential_functions_run_back_to_back() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert!(!report.any_oom());
        // 1 s + 2 s plus a small transfer.
        assert!(report.makespan_ms() >= 3_000.0);
        assert!(report.makespan_ms() < 3_100.0);
        let a = wf.find("first").unwrap();
        let c = wf.find("second").unwrap();
        assert!(report.execution(c).unwrap().start_ms >= report.execution(a).unwrap().end_ms);
        assert_eq!(report.executions().len(), 2);
    }

    #[test]
    fn parallel_branches_overlap() {
        let mut b = WorkflowBuilder::new("par");
        let split = b.add_function("split");
        let w1 = b.add_function("w1");
        let w2 = b.add_function("w2");
        let merge = b.add_function("merge");
        b.add_edge(split, w1).unwrap();
        b.add_edge(split, w2).unwrap();
        b.add_edge(w1, merge).unwrap();
        b.add_edge(w2, merge).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        for (id, spec) in wf.iter() {
            profiles.insert(
                id,
                FunctionProfile::builder(spec.name())
                    .serial_ms(1_000.0)
                    .build(),
            );
        }
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        // 3 levels of 1 s each, not 4 s: the two workers overlap.
        assert!(report.makespan_ms() < 3_200.0);
        assert!(report.makespan_ms() >= 3_000.0);
    }

    #[test]
    fn capacity_limits_serialise_parallel_work() {
        let mut b = WorkflowBuilder::new("cap");
        let w1 = b.add_function("w1");
        let w2 = b.add_function("w2");
        // No edges: both are entry functions and could run in parallel.
        let _ = (w1, w2);
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        for (id, spec) in wf.iter() {
            profiles.insert(
                id,
                FunctionProfile::builder(spec.name())
                    .serial_ms(1_000.0)
                    .build(),
            );
        }
        let tiny_cluster = ClusterSpec {
            hosts: 1,
            vcpus_per_host: 1.0,
            memory_mb_per_host: 1024,
            ..ClusterSpec::paper_testbed()
        };
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &tiny_cluster);
        // Only one fits at a time, so the second waits for the first.
        assert!(report.makespan_ms() >= 2_000.0);
        let queued = report
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::QueuedForCapacity { .. }))
            .count();
        assert_eq!(queued, 1);
    }

    #[test]
    fn oom_is_reported_and_does_not_satisfy_slo() {
        let mut b = WorkflowBuilder::new("oom");
        let a = b.add_function("big");
        let _ = a;
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            wf.find("big").unwrap(),
            FunctionProfile::builder("big")
                .serial_ms(100.0)
                .working_set_mb(4096.0)
                .mem_floor_mb(2048.0)
                .build(),
        );
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert!(report.any_oom());
        assert!(!report.meets_slo(1_000_000.0));
    }

    #[test]
    fn unplaceable_config_is_an_error() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(200.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SimulatorError::Unplaceable { .. }));
    }

    #[test]
    fn missing_profile_is_an_error() {
        let mut b = WorkflowBuilder::new("missing");
        let a = b.add_function("present");
        let c = b.add_function("absent");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            a,
            FunctionProfile::builder("present").serial_ms(10.0).build(),
        );
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingProfile { .. }));
    }

    #[test]
    fn config_map_length_mismatch_is_an_error() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(1, ResourceConfig::new(1.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingConfig { .. }));
    }

    #[test]
    fn deterministic_without_jitter_and_varies_with_jitter() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let r1 = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let r2 = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert_eq!(r1.makespan_ms(), r2.makespan_ms());
        assert_eq!(r1.total_cost(), r2.total_cost());

        let jittery = ClusterSpec::paper_testbed_with_jitter(0.05);
        let j1 = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &jittery,
            &PricingModel::paper(),
            1,
        )
        .unwrap();
        let j2 = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &jittery,
            &PricingModel::paper(),
            2,
        )
        .unwrap();
        assert_ne!(j1.makespan_ms(), j2.makespan_ms());
    }

    #[test]
    fn cost_matches_pricing_model_sum() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(2.0, 1024));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let pricing = PricingModel::paper();
        let manual: f64 = report
            .executions()
            .iter()
            .map(|e| pricing.invocation_cost(e.config, e.runtime_ms))
            .sum();
        assert!((report.total_cost() - manual).abs() < 1e-9);
    }

    #[test]
    fn cold_starts_add_latency_but_not_billed_runtime() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let warm = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let cold_cluster = ClusterSpec {
            cold_start: crate::cluster::ColdStartModel::typical(),
            ..ClusterSpec::paper_testbed()
        };
        let cold = run(&wf, &profiles, &configs, &cold_cluster);
        assert!(cold.makespan_ms() > warm.makespan_ms());
        assert!((cold.total_cost() - warm.total_cost()).abs() < 1e-9);
    }
}
