//! Discrete-event execution of a workflow DAG under a resource
//! configuration.
//!
//! Since the kernel refactor this module owns the *materialised* side of a
//! simulation: the [`ExecutionReport`] with per-function names and the full
//! event trace. The discrete-event loop itself lives in
//! [`kernel`](crate::kernel) — [`execute_workflow`] compiles the scenario,
//! runs the kernel once with trace recording on, and hands back the full
//! report. Hot paths (the search methods, via
//! [`EvalEngine`](crate::eval::EvalEngine)) use the kernel's lean
//! [`SimResult`](crate::kernel::SimResult) instead and only materialise an
//! `ExecutionReport` for winners.

use serde::{Deserialize, Serialize};

use aarc_workflow::{NodeId, Workflow};

use crate::cluster::ClusterSpec;
use crate::cost::PricingModel;
use crate::env::ConfigMap;
use crate::error::SimulatorError;
use crate::input::InputSpec;
use crate::kernel::{CompiledScenario, SimScratch};
use crate::perf_model::ProfileSet;
use crate::resources::ResourceConfig;
use crate::trace::ExecutionTrace;

/// Billed runtime charged for an invocation that is killed by the OOM
/// supervisor (detection and teardown time).
pub(crate) const OOM_KILL_MS: f64 = 50.0;

/// Per-function outcome of one simulated workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionExecution {
    /// The function.
    pub node: NodeId,
    /// Its name.
    pub name: String,
    /// Configuration it ran with.
    pub config: ResourceConfig,
    /// Host it was placed on.
    pub host: usize,
    /// Time the function became ready (dependencies satisfied), ms.
    pub ready_ms: f64,
    /// Time the container started (after any capacity wait), ms.
    pub start_ms: f64,
    /// Time the function finished, ms.
    pub end_ms: f64,
    /// Billed runtime (excludes queueing and cold start), ms.
    pub runtime_ms: f64,
    /// Cold-start latency paid, ms.
    pub cold_start_ms: f64,
    /// Billed cost of this invocation.
    pub cost: f64,
    /// Whether the invocation was killed out-of-memory.
    pub oom: bool,
}

/// Result of executing a workflow once under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    executions: Vec<FunctionExecution>,
    makespan_ms: f64,
    total_cost: f64,
    any_oom: bool,
    #[serde(skip)]
    trace: ExecutionTrace,
}

impl ExecutionReport {
    /// Assembles a report from kernel output (crate-internal: reports are
    /// only ever produced by a simulation).
    pub(crate) fn from_parts(
        executions: Vec<FunctionExecution>,
        makespan_ms: f64,
        total_cost: f64,
        any_oom: bool,
        trace: ExecutionTrace,
    ) -> Self {
        ExecutionReport {
            executions,
            makespan_ms,
            total_cost,
            any_oom,
            trace,
        }
    }

    /// End-to-end latency of the workflow in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Total billed cost over all function invocations.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Whether any function was OOM-killed.
    pub fn any_oom(&self) -> bool {
        self.any_oom
    }

    /// `true` when no function failed and the makespan is within `slo_ms`.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        !self.any_oom && self.makespan_ms <= slo_ms
    }

    /// Per-function outcomes, ordered by node index.
    pub fn executions(&self) -> &[FunctionExecution] {
        &self.executions
    }

    /// The outcome of one function.
    ///
    /// Executions are stored densely ordered by node index, so the common
    /// case is a direct O(1) index (callers like
    /// [`runtime_of`](ExecutionReport::runtime_of) hit this in loops); a
    /// linear scan backs it up for reports that arrived in a different
    /// order (e.g. hand-edited deserialized JSON).
    pub fn execution(&self, node: NodeId) -> Option<&FunctionExecution> {
        match self.executions.get(node.index()) {
            Some(e) if e.node == node => Some(e),
            _ => self.executions.iter().find(|e| e.node == node),
        }
    }

    /// Billed runtime of one function, if it ran.
    pub fn runtime_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.runtime_ms)
    }

    /// Billed cost of one function, if it ran.
    pub fn cost_of(&self, node: NodeId) -> Option<f64> {
        self.execution(node).map(|e| e.cost)
    }

    /// The detailed event trace of the execution.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }
}

/// Executes `workflow` once under `configs`, materialising the full report
/// (per-function names and the complete event trace).
///
/// This is the low-level entry point; most callers use
/// [`WorkflowEnvironment::execute`](crate::env::WorkflowEnvironment::execute)
/// which bundles the static arguments, and the search methods go through
/// [`EvalEngine`](crate::eval::EvalEngine), which compiles the scenario once
/// and reuses a [`SimScratch`] per worker instead of paying the per-call
/// compilation this wrapper does.
///
/// # Errors
///
/// Returns an error if a function lacks a profile or configuration, or if a
/// configuration can never fit on any cluster host.
#[allow(clippy::too_many_arguments)]
pub fn execute_workflow(
    workflow: &Workflow,
    profiles: &ProfileSet,
    configs: &ConfigMap,
    input: InputSpec,
    cluster: &ClusterSpec,
    pricing: &PricingModel,
    seed: u64,
) -> Result<ExecutionReport, SimulatorError> {
    let n = workflow.len();
    if configs.len() != n {
        return Err(SimulatorError::ConfigCountMismatch {
            expected: n,
            got: configs.len(),
        });
    }
    // Validate in the order this function always has (per node: profile,
    // then placeability) so error reporting is unchanged even though the
    // kernel re-checks placement itself.
    for id in workflow.node_ids() {
        if profiles.get(id).is_none() {
            return Err(SimulatorError::MissingProfile {
                node: id,
                name: workflow.function(id).name().to_owned(),
            });
        }
        if !cluster.can_fit(configs.get(id)) {
            return Err(SimulatorError::Unplaceable { node: id });
        }
    }

    let scenario = CompiledScenario::compile(workflow, profiles, *cluster, *pricing)?;
    scenario.simulate_report(&mut SimScratch::new(), configs, input, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ConfigMap;
    use crate::perf_model::FunctionProfile;
    use crate::trace::TraceEvent;
    use aarc_workflow::WorkflowBuilder;

    fn two_step_workflow() -> (Workflow, ProfileSet) {
        let mut b = WorkflowBuilder::new("two");
        let a = b.add_function("first");
        let c = b.add_function("second");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            a,
            FunctionProfile::builder("first").serial_ms(1_000.0).build(),
        );
        profiles.insert(
            c,
            FunctionProfile::builder("second")
                .serial_ms(2_000.0)
                .build(),
        );
        (wf, profiles)
    }

    fn run(
        wf: &Workflow,
        profiles: &ProfileSet,
        configs: &ConfigMap,
        cluster: &ClusterSpec,
    ) -> ExecutionReport {
        execute_workflow(
            wf,
            profiles,
            configs,
            InputSpec::nominal(),
            cluster,
            &PricingModel::paper(),
            42,
        )
        .unwrap()
    }

    #[test]
    fn sequential_functions_run_back_to_back() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert!(!report.any_oom());
        // 1 s + 2 s plus a small transfer.
        assert!(report.makespan_ms() >= 3_000.0);
        assert!(report.makespan_ms() < 3_100.0);
        let a = wf.find("first").unwrap();
        let c = wf.find("second").unwrap();
        assert!(report.execution(c).unwrap().start_ms >= report.execution(a).unwrap().end_ms);
        assert_eq!(report.executions().len(), 2);
    }

    #[test]
    fn parallel_branches_overlap() {
        let mut b = WorkflowBuilder::new("par");
        let split = b.add_function("split");
        let w1 = b.add_function("w1");
        let w2 = b.add_function("w2");
        let merge = b.add_function("merge");
        b.add_edge(split, w1).unwrap();
        b.add_edge(split, w2).unwrap();
        b.add_edge(w1, merge).unwrap();
        b.add_edge(w2, merge).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        for (id, spec) in wf.iter() {
            profiles.insert(
                id,
                FunctionProfile::builder(spec.name())
                    .serial_ms(1_000.0)
                    .build(),
            );
        }
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        // 3 levels of 1 s each, not 4 s: the two workers overlap.
        assert!(report.makespan_ms() < 3_200.0);
        assert!(report.makespan_ms() >= 3_000.0);
    }

    #[test]
    fn capacity_limits_serialise_parallel_work() {
        let mut b = WorkflowBuilder::new("cap");
        let w1 = b.add_function("w1");
        let w2 = b.add_function("w2");
        // No edges: both are entry functions and could run in parallel.
        let _ = (w1, w2);
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        for (id, spec) in wf.iter() {
            profiles.insert(
                id,
                FunctionProfile::builder(spec.name())
                    .serial_ms(1_000.0)
                    .build(),
            );
        }
        let tiny_cluster = ClusterSpec {
            hosts: 1,
            vcpus_per_host: 1.0,
            memory_mb_per_host: 1024,
            ..ClusterSpec::paper_testbed()
        };
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &tiny_cluster);
        // Only one fits at a time, so the second waits for the first.
        assert!(report.makespan_ms() >= 2_000.0);
        let queued = report
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::QueuedForCapacity { .. }))
            .count();
        assert_eq!(queued, 1);
    }

    #[test]
    fn oom_is_reported_and_does_not_satisfy_slo() {
        let mut b = WorkflowBuilder::new("oom");
        let a = b.add_function("big");
        let _ = a;
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            wf.find("big").unwrap(),
            FunctionProfile::builder("big")
                .serial_ms(100.0)
                .working_set_mb(4096.0)
                .mem_floor_mb(2048.0)
                .build(),
        );
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert!(report.any_oom());
        assert!(!report.meets_slo(1_000_000.0));
    }

    #[test]
    fn unplaceable_config_is_an_error() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(200.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SimulatorError::Unplaceable { .. }));
    }

    #[test]
    fn missing_profile_is_an_error() {
        let mut b = WorkflowBuilder::new("missing");
        let a = b.add_function("present");
        let c = b.add_function("absent");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            a,
            FunctionProfile::builder("present").serial_ms(10.0).build(),
        );
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingProfile { .. }));
    }

    #[test]
    fn config_map_length_mismatch_is_an_error() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(1, ResourceConfig::new(1.0, 512));
        let err = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &ClusterSpec::paper_testbed(),
            &PricingModel::paper(),
            0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimulatorError::ConfigCountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn deterministic_without_jitter_and_varies_with_jitter() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let r1 = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let r2 = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        assert_eq!(r1.makespan_ms(), r2.makespan_ms());
        assert_eq!(r1.total_cost(), r2.total_cost());

        let jittery = ClusterSpec::paper_testbed_with_jitter(0.05);
        let j1 = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &jittery,
            &PricingModel::paper(),
            1,
        )
        .unwrap();
        let j2 = execute_workflow(
            &wf,
            &profiles,
            &configs,
            InputSpec::nominal(),
            &jittery,
            &PricingModel::paper(),
            2,
        )
        .unwrap();
        assert_ne!(j1.makespan_ms(), j2.makespan_ms());
    }

    #[test]
    fn cost_matches_pricing_model_sum() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(2.0, 1024));
        let report = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let pricing = PricingModel::paper();
        let manual: f64 = report
            .executions()
            .iter()
            .map(|e| pricing.invocation_cost(e.config, e.runtime_ms))
            .sum();
        assert!((report.total_cost() - manual).abs() < 1e-9);
    }

    #[test]
    fn cold_starts_add_latency_but_not_billed_runtime() {
        let (wf, profiles) = two_step_workflow();
        let configs = ConfigMap::uniform(wf.len(), ResourceConfig::new(1.0, 512));
        let warm = run(&wf, &profiles, &configs, &ClusterSpec::paper_testbed());
        let cold_cluster = ClusterSpec {
            cold_start: crate::cluster::ColdStartModel::typical(),
            ..ClusterSpec::paper_testbed()
        };
        let cold = run(&wf, &profiles, &configs, &cold_cluster);
        assert!(cold.makespan_ms() > warm.makespan_ms());
        assert!((cold.total_cost() - warm.total_cost()).abs() < 1e-9);
    }
}
