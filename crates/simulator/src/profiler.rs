//! Profiling runs: execute the workflow with a dummy (nominal) input and the
//! base configuration to obtain per-function runtimes, which become the node
//! weights of the weighted DAG (Algorithm 1, lines 2–6).

use serde::{Deserialize, Serialize};

use aarc_workflow::NodeId;

use crate::env::{ConfigMap, WorkflowEnvironment};
use crate::error::SimulatorError;
use crate::executor::ExecutionReport;
use crate::kernel::SimResult;

/// Per-function runtimes measured by a profiling run, used as DAG node
/// weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledWeights {
    runtimes_ms: Vec<f64>,
}

impl ProfiledWeights {
    /// Builds weights from an execution report (billed runtime per
    /// function; OOM-killed functions contribute their kill time).
    pub fn from_report(report: &ExecutionReport) -> Self {
        let n = report.executions().len();
        let mut runtimes_ms = vec![0.0; n];
        for exec in report.executions() {
            if exec.node.index() < n {
                runtimes_ms[exec.node.index()] = exec.runtime_ms;
            }
        }
        ProfiledWeights { runtimes_ms }
    }

    /// Builds weights from a kernel [`SimResult`] (billed runtime per
    /// function; OOM-killed functions contribute their kill time). The
    /// search-side twin of [`ProfiledWeights::from_report`] — results store
    /// outcomes densely by node index, so this is a straight copy.
    pub fn from_result(result: &SimResult) -> Self {
        ProfiledWeights {
            runtimes_ms: result.executions().iter().map(|e| e.runtime_ms).collect(),
        }
    }

    /// Runtime of `node` in milliseconds (zero for unknown nodes).
    pub fn get(&self, node: NodeId) -> f64 {
        self.runtimes_ms.get(node.index()).copied().unwrap_or(0.0)
    }

    /// Number of profiled functions.
    pub fn len(&self) -> usize {
        self.runtimes_ms.len()
    }

    /// Returns `true` if no functions were profiled.
    pub fn is_empty(&self) -> bool {
        self.runtimes_ms.is_empty()
    }

    /// Sum of all function runtimes (the weight of executing the workflow
    /// serially).
    pub fn total_ms(&self) -> f64 {
        self.runtimes_ms.iter().sum()
    }

    /// A closure usable directly as the weight function of
    /// [`critical_path`](aarc_workflow::critical_path::critical_path).
    pub fn weight_fn(&self) -> impl Fn(NodeId) -> f64 + Copy + '_ {
        move |id| self.get(id)
    }
}

/// Profiles `env`'s workflow under `configs`, returning the per-function
/// runtimes.
///
/// # Errors
///
/// Propagates execution errors (missing profiles, unplaceable containers).
pub fn profile_workflow(
    env: &WorkflowEnvironment,
    configs: &ConfigMap,
) -> Result<ProfiledWeights, SimulatorError> {
    let report = env.execute(configs)?;
    Ok(ProfiledWeights::from_report(&report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_model::{FunctionProfile, ProfileSet};
    use crate::resources::ResourceConfig;
    use aarc_workflow::critical_path::critical_path;
    use aarc_workflow::WorkflowBuilder;

    fn env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("prof");
        let a = b.add_function("fast");
        let c = b.add_function("slow");
        let d = b.add_function("sink");
        b.add_edge(a, d).unwrap();
        b.add_edge(c, d).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(a, FunctionProfile::builder("fast").serial_ms(100.0).build());
        profiles.insert(
            c,
            FunctionProfile::builder("slow").serial_ms(5_000.0).build(),
        );
        profiles.insert(d, FunctionProfile::builder("sink").serial_ms(50.0).build());
        WorkflowEnvironment::builder(wf, profiles).build().unwrap()
    }

    #[test]
    fn profiling_extracts_per_function_runtimes() {
        let env = env();
        let weights = profile_workflow(&env, &env.base_configs()).unwrap();
        assert_eq!(weights.len(), 3);
        let slow = env.workflow().find("slow").unwrap();
        let fast = env.workflow().find("fast").unwrap();
        assert!(weights.get(slow) > weights.get(fast));
        assert!(weights.total_ms() >= weights.get(slow));
        assert!(!weights.is_empty());
    }

    #[test]
    fn weights_feed_critical_path_extraction() {
        let env = env();
        let weights = profile_workflow(&env, &env.base_configs()).unwrap();
        let cp = critical_path(env.workflow().dag(), weights.weight_fn());
        let slow = env.workflow().find("slow").unwrap();
        assert!(
            cp.contains(slow),
            "critical path must include the slow branch"
        );
    }

    #[test]
    fn unknown_node_weight_is_zero() {
        let env = env();
        let weights = profile_workflow(&env, &env.base_configs()).unwrap();
        assert_eq!(weights.get(NodeId::new(99)), 0.0);
    }

    #[test]
    fn profiling_respects_configuration() {
        let env = env();
        let big = ConfigMap::uniform(3, ResourceConfig::new(4.0, 2048));
        let small = ConfigMap::uniform(3, ResourceConfig::new(0.5, 2048));
        let wb = profile_workflow(&env, &big).unwrap();
        let ws = profile_workflow(&env, &small).unwrap();
        // Sub-core allocation slows every function down.
        assert!(ws.total_ms() > wb.total_ms());
    }
}
