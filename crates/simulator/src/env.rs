//! [`WorkflowEnvironment`]: the bundle a configuration-search method samples
//! from, and [`ConfigMap`]: the per-function configuration vector it
//! optimises.

use serde::{Deserialize, Serialize};

use aarc_workflow::{NodeId, Workflow};

use crate::cluster::ClusterSpec;
use crate::cost::PricingModel;
use crate::error::SimulatorError;
use crate::executor::{execute_workflow, ExecutionReport};
use crate::input::InputSpec;
use crate::perf_model::ProfileSet;
use crate::resources::{ResourceConfig, ResourceSpace};

/// Per-function resource configurations of a workflow, indexed by
/// [`NodeId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigMap {
    configs: Vec<ResourceConfig>,
}

impl ConfigMap {
    /// Creates a map assigning `config` to all `len` functions.
    pub fn uniform(len: usize, config: ResourceConfig) -> Self {
        ConfigMap {
            configs: vec![config; len],
        }
    }

    /// Creates a map from an explicit per-function vector.
    pub fn from_vec(configs: Vec<ResourceConfig>) -> Self {
        ConfigMap { configs }
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the map covers no functions.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Configuration of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn get(&self, node: NodeId) -> ResourceConfig {
        self.configs[node.index()]
    }

    /// Replaces the configuration of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, config: ResourceConfig) {
        self.configs[node.index()] = config;
    }

    /// Iterates over `(NodeId, ResourceConfig)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ResourceConfig)> + '_ {
        self.configs
            .iter()
            .enumerate()
            .map(|(i, c)| (NodeId::new(i), *c))
    }

    /// The raw configuration slice, indexed by node index.
    pub fn as_slice(&self) -> &[ResourceConfig] {
        &self.configs
    }

    /// Total memory provisioned across all functions, in MB.
    pub fn total_memory_mb(&self) -> u64 {
        self.configs.iter().map(|c| u64::from(c.memory.get())).sum()
    }

    /// Total vCPUs provisioned across all functions.
    pub fn total_vcpu(&self) -> f64 {
        self.configs.iter().map(|c| c.vcpu.get()).sum()
    }
}

/// Static bundle of everything needed to execute a workflow under candidate
/// configurations: the workflow, per-function profiles, pricing, cluster,
/// resource space and default input.
///
/// The environment plays the role of the paper's cloud testbed: search
/// methods repeatedly call [`WorkflowEnvironment::execute`] with candidate
/// [`ConfigMap`]s and observe runtime and cost.
#[derive(Debug, Clone)]
pub struct WorkflowEnvironment {
    workflow: Workflow,
    profiles: ProfileSet,
    pricing: PricingModel,
    cluster: ClusterSpec,
    space: ResourceSpace,
    input: InputSpec,
    base_config: ResourceConfig,
    seed: u64,
}

impl WorkflowEnvironment {
    /// Starts building an environment for `workflow` with the given
    /// profiles.
    pub fn builder(workflow: Workflow, profiles: ProfileSet) -> WorkflowEnvironmentBuilder {
        WorkflowEnvironmentBuilder {
            env: WorkflowEnvironment {
                workflow,
                profiles,
                pricing: PricingModel::paper(),
                cluster: ClusterSpec::paper_testbed(),
                space: ResourceSpace::paper(),
                input: InputSpec::nominal(),
                base_config: ResourceSpace::paper().max_config(),
                seed: 0,
            },
        }
    }

    /// The workflow being configured.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The per-function performance profiles.
    pub fn profiles(&self) -> &ProfileSet {
        &self.profiles
    }

    /// The pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The discrete resource space configurations are drawn from.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The default input executions use.
    pub fn input(&self) -> InputSpec {
        self.input
    }

    /// The over-provisioned base configuration (Algorithm 1, lines 2–4).
    pub fn base_config(&self) -> ResourceConfig {
        self.base_config
    }

    /// The RNG seed used for jittered executions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A [`ConfigMap`] assigning the base configuration to every function.
    pub fn base_configs(&self) -> ConfigMap {
        ConfigMap::uniform(self.workflow.len(), self.base_config)
    }

    /// A stable 64-bit fingerprint of the whole scenario (workflow
    /// structure, profiles, pricing, cluster, space, default input and
    /// seed), used as the scenario component of the
    /// [`EvalEngine`](crate::eval::EvalEngine) cache key. FNV-1a over a
    /// canonical rendering — per-function profiles are walked in node order,
    /// not map order, so two identical environments always agree. Any change
    /// to any field changes the fingerprint, so memoised reports can never
    /// leak across scenarios.
    pub fn fingerprint(&self) -> u64 {
        use std::fmt::Write;
        let mut rendered = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
            self.workflow,
            self.pricing,
            self.cluster,
            self.space,
            self.input,
            self.base_config,
            self.seed
        );
        for id in self.workflow.node_ids() {
            write!(rendered, "|{:?}:{:?}", id, self.profiles.get(id))
                .expect("writing to a String is infallible");
        }
        crate::eval::fnv1a_64(rendered.bytes())
    }

    /// Executes the workflow once under `configs` with the environment's
    /// default input and seed.
    ///
    /// # Errors
    ///
    /// See [`execute_workflow`].
    pub fn execute(&self, configs: &ConfigMap) -> Result<ExecutionReport, SimulatorError> {
        self.execute_with(configs, self.input, self.seed)
    }

    /// Executes the workflow once under `configs` for a specific input.
    ///
    /// # Errors
    ///
    /// See [`execute_workflow`].
    pub fn execute_with_input(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
    ) -> Result<ExecutionReport, SimulatorError> {
        self.execute_with(configs, input, self.seed)
    }

    /// Executes the workflow once with full control over input and RNG seed
    /// (the seed only matters when the cluster models runtime jitter).
    ///
    /// # Errors
    ///
    /// See [`execute_workflow`].
    pub fn execute_with(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        execute_workflow(
            &self.workflow,
            &self.profiles,
            configs,
            input,
            &self.cluster,
            &self.pricing,
            seed,
        )
    }

    /// Returns a copy of the environment with a different default input
    /// (used by the input-aware engine to optimise per input class).
    pub fn with_input(&self, input: InputSpec) -> Self {
        WorkflowEnvironment {
            input,
            ..self.clone()
        }
    }
}

/// Builder for [`WorkflowEnvironment`].
#[derive(Debug, Clone)]
pub struct WorkflowEnvironmentBuilder {
    env: WorkflowEnvironment,
}

impl WorkflowEnvironmentBuilder {
    /// Overrides the pricing model (default: the paper's constants).
    pub fn pricing(mut self, pricing: PricingModel) -> Self {
        self.env.pricing = pricing;
        self
    }

    /// Overrides the cluster specification (default: the paper's testbed).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.env.cluster = cluster;
        self
    }

    /// Overrides the resource space (default: the paper's discretisation).
    pub fn space(mut self, space: ResourceSpace) -> Self {
        self.env.space = space;
        self
    }

    /// Overrides the default input (default: nominal).
    pub fn input(mut self, input: InputSpec) -> Self {
        self.env.input = input;
        self
    }

    /// Overrides the over-provisioned base configuration (default: the
    /// space's maximum configuration).
    pub fn base_config(mut self, config: ResourceConfig) -> Self {
        self.env.base_config = config;
        self
    }

    /// Sets the RNG seed used for jittered executions.
    pub fn seed(mut self, seed: u64) -> Self {
        self.env.seed = seed;
        self
    }

    /// Validates and finishes the environment.
    ///
    /// # Errors
    ///
    /// Returns an error if any function lacks a profile, or if the base
    /// configuration cannot fit on the cluster.
    pub fn build(self) -> Result<WorkflowEnvironment, SimulatorError> {
        let env = self.env;
        for id in env.workflow.node_ids() {
            if env.profiles.get(id).is_none() {
                return Err(SimulatorError::MissingProfile {
                    node: id,
                    name: env.workflow.function(id).name().to_owned(),
                });
            }
        }
        if !env.cluster.can_fit(env.base_config) {
            return Err(SimulatorError::InvalidConfig {
                node: NodeId::new(0),
                reason: format!(
                    "base configuration {} exceeds the capacity of every cluster host",
                    env.base_config
                ),
            });
        }
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_model::FunctionProfile;
    use aarc_workflow::WorkflowBuilder;

    fn env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("env");
        let a = b.add_function("a");
        let c = b.add_function("b");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(
            a,
            FunctionProfile::builder("a").parallel_ms(4_000.0).build(),
        );
        profiles.insert(c, FunctionProfile::builder("b").serial_ms(1_000.0).build());
        WorkflowEnvironment::builder(wf, profiles).build().unwrap()
    }

    #[test]
    fn config_map_accessors() {
        let mut m = ConfigMap::uniform(3, ResourceConfig::new(1.0, 512));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        m.set(NodeId::new(1), ResourceConfig::new(2.0, 1024));
        assert_eq!(m.get(NodeId::new(1)), ResourceConfig::new(2.0, 1024));
        assert_eq!(m.total_memory_mb(), 512 + 1024 + 512);
        assert!((m.total_vcpu() - 4.0).abs() < 1e-9);
        assert_eq!(m.iter().count(), 3);
        assert_eq!(m.as_slice().len(), 3);
        let v = ConfigMap::from_vec(vec![ResourceConfig::new(0.5, 128)]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn environment_executes_base_configs() {
        let env = env();
        let report = env.execute(&env.base_configs()).unwrap();
        assert!(report.makespan_ms() > 0.0);
        assert!(!report.any_oom());
    }

    #[test]
    fn builder_rejects_missing_profiles() {
        let mut b = WorkflowBuilder::new("bad");
        b.add_function("unprofiled");
        let wf = b.build().unwrap();
        let err = WorkflowEnvironment::builder(wf, ProfileSet::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, SimulatorError::MissingProfile { .. }));
    }

    #[test]
    fn builder_rejects_oversized_base_config() {
        let mut b = WorkflowBuilder::new("big");
        let a = b.add_function("a");
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(a, FunctionProfile::builder("a").serial_ms(1.0).build());
        let err = WorkflowEnvironment::builder(wf, profiles)
            .cluster(ClusterSpec {
                vcpus_per_host: 4.0,
                ..ClusterSpec::paper_testbed()
            })
            .base_config(ResourceConfig::new(8.0, 1024))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimulatorError::InvalidConfig { .. }));
    }

    #[test]
    fn with_input_changes_default_input() {
        let env = env().with_input(InputSpec::new(2.0, 64.0));
        assert_eq!(env.input().scale, 2.0);
        let base = env.base_configs();
        let heavy = env.execute(&base).unwrap();
        let light = env
            .execute_with_input(&base, InputSpec::new(0.5, 2.0))
            .unwrap();
        assert!(heavy.makespan_ms() > light.makespan_ms());
    }

    #[test]
    fn builder_overrides_are_applied() {
        let mut b = WorkflowBuilder::new("cfg");
        let a = b.add_function("a");
        let wf = b.build().unwrap();
        let mut profiles = ProfileSet::new();
        profiles.insert(a, FunctionProfile::builder("a").serial_ms(1.0).build());
        let env = WorkflowEnvironment::builder(wf, profiles)
            .pricing(PricingModel::new(1.0, 0.0, 0.0))
            .space(ResourceSpace {
                max_vcpu: 4.0,
                ..ResourceSpace::paper()
            })
            .base_config(ResourceConfig::new(4.0, 2048))
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(env.pricing().per_vcpu_ms, 1.0);
        assert_eq!(env.space().max_vcpu, 4.0);
        assert_eq!(env.base_config(), ResourceConfig::new(4.0, 2048));
    }
}
