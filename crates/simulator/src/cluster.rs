//! Cluster, host and cold-start modelling.
//!
//! The paper executes workflows on a single 4-socket Xeon host (96 physical
//! cores, 512 GB) with one Docker container per function. The simulator
//! generalises this to a small cluster of identical hosts so that resource
//! contention between parallel functions is modelled: a function can only
//! start once a host has enough free vCPU and memory for its container.

use serde::{Deserialize, Serialize};

use crate::resources::ResourceConfig;

/// Cold-start latency model for containers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Whether cold starts are simulated at all. The configuration-search
    /// experiments in the paper measure warm executions, so this defaults to
    /// `false`.
    pub enabled: bool,
    /// Fixed container provisioning latency in milliseconds.
    pub base_ms: f64,
    /// Additional latency per GB of configured memory (larger sandboxes take
    /// longer to provision).
    pub per_gb_ms: f64,
}

impl ColdStartModel {
    /// Cold starts disabled.
    pub fn disabled() -> Self {
        ColdStartModel {
            enabled: false,
            base_ms: 0.0,
            per_gb_ms: 0.0,
        }
    }

    /// A typical warm-pool-miss cold start: 250 ms plus 50 ms per GB.
    pub fn typical() -> Self {
        ColdStartModel {
            enabled: true,
            base_ms: 250.0,
            per_gb_ms: 50.0,
        }
    }

    /// Cold-start latency for a container of the given configuration.
    pub fn latency_ms(&self, config: ResourceConfig) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        self.base_ms + self.per_gb_ms * config.memory.as_gb()
    }
}

impl Default for ColdStartModel {
    fn default() -> Self {
        ColdStartModel::disabled()
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of identical hosts.
    pub hosts: usize,
    /// vCPUs per host.
    pub vcpus_per_host: f64,
    /// Memory per host in MB.
    pub memory_mb_per_host: u32,
    /// Network bandwidth between functions in MB/s, used for inter-function
    /// data transfers.
    pub network_mb_per_s: f64,
    /// Cold-start model.
    pub cold_start: ColdStartModel,
    /// Relative multiplicative runtime jitter (e.g. `0.02` = ±2 %). Zero
    /// makes executions fully deterministic.
    pub runtime_jitter: f64,
}

impl ClusterSpec {
    /// The paper's testbed: one host with 96 physical cores and 512 GB of
    /// memory, 10 Gbit/s-class networking, warm containers, no jitter.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            hosts: 1,
            vcpus_per_host: 96.0,
            memory_mb_per_host: 512 * 1024,
            network_mb_per_s: 1_000.0,
            cold_start: ColdStartModel::disabled(),
            runtime_jitter: 0.0,
        }
    }

    /// The paper's testbed with a small amount of measurement noise, used by
    /// the Table II experiment (100 repeated executions with ± std).
    pub fn paper_testbed_with_jitter(jitter: f64) -> Self {
        ClusterSpec {
            runtime_jitter: jitter,
            ..ClusterSpec::paper_testbed()
        }
    }

    /// Capacity check: can the cluster ever host a container of this size?
    pub fn can_fit(&self, config: ResourceConfig) -> bool {
        config.vcpu.get() <= self.vcpus_per_host + 1e-9
            && config.memory.get() <= self.memory_mb_per_host
    }

    /// Transfer latency for `payload_mb` megabytes over the cluster network.
    pub fn transfer_ms(&self, payload_mb: f64) -> f64 {
        if self.network_mb_per_s <= 0.0 {
            return 0.0;
        }
        payload_mb.max(0.0) / self.network_mb_per_s * 1_000.0
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::paper_testbed()
    }
}

/// Mutable per-host free capacity tracked during execution.
#[derive(Debug, Clone)]
pub(crate) struct HostState {
    pub free_vcpu: f64,
    pub free_memory_mb: f64,
}

/// Mutable cluster state used by the executor for placement decisions.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterState {
    hosts: Vec<HostState>,
}

impl ClusterState {
    /// Restores every host to the full free capacity of `spec`, reusing the
    /// existing allocation. A reset state is indistinguishable from a
    /// freshly constructed one.
    pub fn reset(&mut self, spec: &ClusterSpec) {
        self.hosts.clear();
        self.hosts.extend((0..spec.hosts.max(1)).map(|_| HostState {
            free_vcpu: spec.vcpus_per_host,
            free_memory_mb: f64::from(spec.memory_mb_per_host),
        }));
    }

    /// First-fit placement. Returns the host index if a host has room.
    pub fn try_place(&mut self, config: ResourceConfig) -> Option<usize> {
        let need_cpu = config.vcpu.get();
        let need_mem = f64::from(config.memory.get());
        for (i, h) in self.hosts.iter_mut().enumerate() {
            if h.free_vcpu + 1e-9 >= need_cpu && h.free_memory_mb + 1e-9 >= need_mem {
                h.free_vcpu -= need_cpu;
                h.free_memory_mb -= need_mem;
                return Some(i);
            }
        }
        None
    }

    /// Releases the resources of a container previously placed on `host`.
    pub fn release(&mut self, host: usize, config: ResourceConfig) {
        let h = &mut self.hosts[host];
        h.free_vcpu += config.vcpu.get();
        h.free_memory_mb += f64::from(config.memory.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_dimensions() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.hosts, 1);
        assert_eq!(c.vcpus_per_host, 96.0);
        assert_eq!(c.memory_mb_per_host, 512 * 1024);
        assert!(c.can_fit(ResourceConfig::new(10.0, 10_240)));
        assert!(!c.can_fit(ResourceConfig::new(200.0, 1024)));
    }

    #[test]
    fn cold_start_latency() {
        let off = ColdStartModel::disabled();
        assert_eq!(off.latency_ms(ResourceConfig::new(1.0, 2048)), 0.0);
        let on = ColdStartModel::typical();
        let lat = on.latency_ms(ResourceConfig::new(1.0, 2048));
        assert!((lat - (250.0 + 50.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_with_payload() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.transfer_ms(0.0), 0.0);
        assert!((c.transfer_ms(100.0) - 100.0).abs() < 1e-9);
        let no_net = ClusterSpec {
            network_mb_per_s: 0.0,
            ..c
        };
        assert_eq!(no_net.transfer_ms(100.0), 0.0);
    }

    #[test]
    fn placement_and_release() {
        let spec = ClusterSpec {
            hosts: 2,
            vcpus_per_host: 4.0,
            memory_mb_per_host: 4096,
            ..ClusterSpec::paper_testbed()
        };
        let mut state = ClusterState::default();
        state.reset(&spec);
        let big = ResourceConfig::new(3.0, 3072);
        let h0 = state.try_place(big).unwrap();
        assert_eq!(h0, 0);
        // Second big container does not fit on host 0 anymore.
        let h1 = state.try_place(big).unwrap();
        assert_eq!(h1, 1);
        // Third does not fit anywhere.
        assert!(state.try_place(big).is_none());
        state.release(h0, big);
        assert_eq!(state.try_place(big), Some(0));
    }

    #[test]
    fn jittered_testbed_keeps_other_fields() {
        let c = ClusterSpec::paper_testbed_with_jitter(0.05);
        assert_eq!(c.runtime_jitter, 0.05);
        assert_eq!(c.hosts, 1);
    }
}
