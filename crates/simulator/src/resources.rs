//! Decoupled CPU and memory allocations and the discretised configuration
//! space of the paper.

use serde::{Deserialize, Serialize};

/// A vCPU allocation (fractional cores), e.g. `Vcpu(0.5)` is half a core.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Vcpu(pub f64);

impl Vcpu {
    /// Raw number of cores.
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for Vcpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} vCPU", self.0)
    }
}

/// A memory allocation in megabytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemoryMb(pub u32);

impl MemoryMb {
    /// Raw megabytes.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Memory expressed in gigabytes.
    pub fn as_gb(self) -> f64 {
        f64::from(self.0) / 1024.0
    }
}

impl std::fmt::Display for MemoryMb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

/// A decoupled (vCPU, memory) configuration for one serverless function.
///
/// On memory-centric platforms such as AWS Lambda the two quantities are
/// coupled (roughly one core per 1769 MB); the paper's premise is that they
/// should be configurable independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// CPU share in cores.
    pub vcpu: Vcpu,
    /// Memory limit in megabytes.
    pub memory: MemoryMb,
}

impl ResourceConfig {
    /// Creates a configuration from raw core and megabyte counts.
    pub fn new(vcpu: f64, memory_mb: u32) -> Self {
        ResourceConfig {
            vcpu: Vcpu(vcpu),
            memory: MemoryMb(memory_mb),
        }
    }

    /// The coupled configuration used by memory-centric platforms and the
    /// MAFF baseline: one vCPU per `mb_per_core` megabytes of memory.
    pub fn coupled(memory_mb: u32, mb_per_core: f64) -> Self {
        ResourceConfig {
            vcpu: Vcpu(f64::from(memory_mb) / mb_per_core),
            memory: MemoryMb(memory_mb),
        }
    }
}

impl std::fmt::Display for ResourceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {}", self.vcpu, self.memory)
    }
}

impl Default for ResourceConfig {
    /// The over-provisioned base configuration used by Algorithm 1 before
    /// any shrinking happens (maximum of the paper's search space).
    fn default() -> Self {
        ResourceSpace::paper().max_config()
    }
}

/// The discretised decoupled configuration space described in §IV-A of the
/// paper: memory from 128 MB to 10 240 MB in 64 MB increments and vCPU from
/// 0.1 to 10 cores (we discretise CPU in 0.1-core steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpace {
    /// Minimum vCPU allocation.
    pub min_vcpu: f64,
    /// Maximum vCPU allocation.
    pub max_vcpu: f64,
    /// vCPU step used when discretising.
    pub vcpu_step: f64,
    /// Minimum memory in MB.
    pub min_memory_mb: u32,
    /// Maximum memory in MB.
    pub max_memory_mb: u32,
    /// Memory step in MB.
    pub memory_step_mb: u32,
}

impl ResourceSpace {
    /// The space used throughout the paper's evaluation.
    pub fn paper() -> Self {
        ResourceSpace {
            min_vcpu: 0.1,
            max_vcpu: 10.0,
            vcpu_step: 0.1,
            min_memory_mb: 128,
            max_memory_mb: 10_240,
            memory_step_mb: 64,
        }
    }

    /// The largest (over-provisioned) configuration in the space, used as
    /// the base configuration of Algorithm 1.
    pub fn max_config(&self) -> ResourceConfig {
        ResourceConfig::new(self.max_vcpu, self.max_memory_mb)
    }

    /// The smallest configuration in the space.
    pub fn min_config(&self) -> ResourceConfig {
        ResourceConfig::new(self.min_vcpu, self.min_memory_mb)
    }

    /// Clamps a configuration into the space and snaps it onto the grid.
    pub fn clamp(&self, config: ResourceConfig) -> ResourceConfig {
        ResourceConfig::new(
            self.snap_vcpu(config.vcpu.get()),
            self.snap_memory(config.memory.get()),
        )
    }

    /// Snaps a vCPU value onto the grid (rounding to the nearest step) and
    /// clamps it into `[min_vcpu, max_vcpu]`.
    pub fn snap_vcpu(&self, vcpu: f64) -> f64 {
        let clamped = vcpu.clamp(self.min_vcpu, self.max_vcpu);
        let steps = ((clamped - self.min_vcpu) / self.vcpu_step).round();
        // Guard against FP drift producing values like 0.30000000000000004.
        ((self.min_vcpu + steps * self.vcpu_step) * 1e6).round() / 1e6
    }

    /// Snaps a memory value onto the grid and clamps it into range.
    pub fn snap_memory(&self, memory_mb: u32) -> u32 {
        let clamped = memory_mb.clamp(self.min_memory_mb, self.max_memory_mb);
        let offset = clamped - self.min_memory_mb;
        let steps = (offset + self.memory_step_mb / 2) / self.memory_step_mb;
        (self.min_memory_mb + steps * self.memory_step_mb).min(self.max_memory_mb)
    }

    /// Returns `true` if `config` lies inside the space (within grid
    /// clamping bounds; it need not be exactly on the grid).
    pub fn contains(&self, config: ResourceConfig) -> bool {
        let v = config.vcpu.get();
        let m = config.memory.get();
        v >= self.min_vcpu - 1e-9
            && v <= self.max_vcpu + 1e-9
            && m >= self.min_memory_mb
            && m <= self.max_memory_mb
    }

    /// Number of discrete vCPU levels.
    pub fn vcpu_levels(&self) -> usize {
        (((self.max_vcpu - self.min_vcpu) / self.vcpu_step).round() as usize) + 1
    }

    /// Number of discrete memory levels.
    pub fn memory_levels(&self) -> usize {
        ((self.max_memory_mb - self.min_memory_mb) / self.memory_step_mb) as usize + 1
    }

    /// Size of the discrete per-function search space (`vcpu × memory`).
    pub fn cardinality(&self) -> usize {
        self.vcpu_levels() * self.memory_levels()
    }

    /// Enumerates all discrete vCPU levels.
    pub fn vcpu_grid(&self) -> Vec<f64> {
        (0..self.vcpu_levels())
            .map(|i| ((self.min_vcpu + i as f64 * self.vcpu_step) * 1e6).round() / 1e6)
            .collect()
    }

    /// Enumerates all discrete memory levels.
    pub fn memory_grid(&self) -> Vec<u32> {
        (0..self.memory_levels())
            .map(|i| self.min_memory_mb + (i as u32) * self.memory_step_mb)
            .collect()
    }
}

impl Default for ResourceSpace {
    fn default() -> Self {
        ResourceSpace::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_dimensions() {
        let s = ResourceSpace::paper();
        assert_eq!(s.memory_levels(), (10_240 - 128) / 64 + 1);
        assert_eq!(s.vcpu_levels(), 100);
        assert_eq!(s.cardinality(), s.vcpu_levels() * s.memory_levels());
        assert_eq!(s.max_config(), ResourceConfig::new(10.0, 10_240));
        assert_eq!(s.min_config(), ResourceConfig::new(0.1, 128));
    }

    #[test]
    fn snap_memory_rounds_to_grid() {
        let s = ResourceSpace::paper();
        assert_eq!(s.snap_memory(128), 128);
        assert_eq!(s.snap_memory(100), 128);
        assert_eq!(s.snap_memory(511), 512);
        assert_eq!(s.snap_memory(530), 512);
        assert_eq!(s.snap_memory(545), 576);
        assert_eq!(s.snap_memory(50_000), 10_240);
    }

    #[test]
    fn snap_vcpu_rounds_to_grid() {
        let s = ResourceSpace::paper();
        assert!((s.snap_vcpu(0.0) - 0.1).abs() < 1e-9);
        assert!((s.snap_vcpu(3.16) - 3.2).abs() < 1e-9);
        assert!((s.snap_vcpu(99.0) - 10.0).abs() < 1e-9);
        // 0.25 is equidistant between grid points; either neighbour is an
        // acceptable snap.
        let snapped = s.snap_vcpu(0.25);
        assert!((snapped - 0.2).abs() < 1e-9 || (snapped - 0.3).abs() < 1e-9);
    }

    #[test]
    fn clamp_combines_both_axes() {
        let s = ResourceSpace::paper();
        let c = s.clamp(ResourceConfig::new(42.0, 7));
        assert_eq!(c, ResourceConfig::new(10.0, 128));
        assert!(s.contains(c));
        assert!(!s.contains(ResourceConfig::new(42.0, 7)));
    }

    #[test]
    fn grids_cover_extremes() {
        let s = ResourceSpace::paper();
        let vg = s.vcpu_grid();
        let mg = s.memory_grid();
        assert_eq!(vg.first().copied(), Some(0.1));
        assert!((vg.last().copied().unwrap() - 10.0).abs() < 1e-6);
        assert_eq!(mg.first().copied(), Some(128));
        assert_eq!(mg.last().copied(), Some(10_240));
    }

    #[test]
    fn coupled_config_matches_maff_ratio() {
        let c = ResourceConfig::coupled(2048, 1024.0);
        assert!((c.vcpu.get() - 2.0).abs() < 1e-9);
        assert_eq!(c.memory.get(), 2048);
    }

    #[test]
    fn default_config_is_base_overprovisioned() {
        assert_eq!(
            ResourceConfig::default(),
            ResourceSpace::paper().max_config()
        );
    }

    #[test]
    fn display_formats() {
        let c = ResourceConfig::new(2.5, 1024);
        assert_eq!(c.to_string(), "2.5 vCPU / 1024 MB");
        assert_eq!(MemoryMb(2048).as_gb(), 2.0);
    }
}
