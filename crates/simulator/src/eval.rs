//! The candidate-evaluation layer between the configuration searchers and
//! the discrete-event executor: a process-wide [`EvalService`] that owns the
//! shared evaluation substrate, cheap per-scenario [`ScenarioHandle`]s that
//! submit candidates through it, and [`EvalEngine`] as a thin single-handle
//! compatibility facade.
//!
//! Every search method (AARC's Graph-Centric Scheduler, Bayesian
//! optimization, MAFF, random search) spends nearly all of its wall-clock
//! re-simulating candidate configurations, many of which repeat across
//! search steps and across methods (the over-provisioned base configuration
//! alone is executed by every method). Real deployments run fleets of
//! heterogeneous workflows against one evaluation substrate, so the
//! expensive, shareable resources are owned once per process by the
//! service:
//!
//! * a **deterministic fork-join worker pool** (`std::thread::scope`) that
//!   evaluates batches of candidates in parallel. Each candidate's RNG seed
//!   is derived from its *batch index* (see [`derive_seed`]), never from the
//!   thread that happens to run it, so results are bit-identical regardless
//!   of the thread count;
//! * a **sharded memo-cache** keyed by `(scenario fingerprint,
//!   configuration, input bucket, seed)` that short-circuits repeated
//!   simulations. Keys carry the scenario fingerprint, so any number of
//!   scenarios can share the cache without ever leaking reports across
//!   scenarios; hit/miss/eviction statistics are kept **per fingerprint**
//!   (see [`EvalService::scenario_stats`]) as well as in aggregate;
//! * a pool of reusable [`SimScratch`] arenas borrowed by worker threads.
//!
//! A [`ScenarioHandle`] is just a compiled scenario plus [`EvalOptions`]:
//! creating one compiles the environment once, and any number of handles
//! (for the same or different scenarios) can submit through one service
//! concurrently with the searches interleaving on the shared pool. The
//! scenario population is a *runtime* concern: scenarios are
//! [`register`](EvalService::register)ed and
//! [`unregister`](EvalService::unregister)ed while the service runs (a
//! long-lived daemon uploads and deletes scenarios over its API), with
//! unregistration purging the scenario's cache entries, and
//! [`EvalService::stats_snapshot`] gives a pollable service-wide view.
//!
//! Cache bookkeeping (lookup, hit/miss accounting, insertion, eviction)
//! always happens on the submitting thread in candidate order; worker
//! threads only ever run the pure simulation. This keeps the statistics —
//! and therefore any report that embeds them — identical for `--threads 1`
//! and `--threads 8`.
//!
//! Both the cache and the searchers traffic in the lean [`SimResult`] —
//! cache hits clone an `Arc`, not a report full of `String`s. The full
//! [`ExecutionReport`](crate::executor::ExecutionReport) is only
//! materialised on demand via [`ScenarioHandle::materialize`] /
//! [`EvalEngine::materialize`].

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use aarc_telemetry::{Counter, FieldValue, FlightRecorder, Gauge, Histogram, Recorder};

use crate::env::{ConfigMap, WorkflowEnvironment};
use crate::error::SimulatorError;
use crate::executor::ExecutionReport;
use crate::input::InputSpec;
use crate::kernel::{BatchSim, CompiledScenario, KernelCounters, SimResult, SimScratch};

/// Number of independent cache shards (a power of two; the shard is chosen
/// by key hash, so concurrent submitters contend on different locks).
const SHARD_COUNT: usize = 16;

/// FNV-1a over a byte stream: the stable 64-bit content hash used for
/// scenario fingerprints (environment and spec level — see
/// [`WorkflowEnvironment::fingerprint`]).
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derives the RNG seed of the candidate at `index` within a batch from the
/// engine's base seed (SplitMix64 finalizer over `base ^ index`).
///
/// Seeds depend only on the *position* of a candidate, never on the worker
/// thread that evaluates it or on any shared RNG stream, which is what
/// decouples batch results from evaluation order and thread count.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning knobs of an [`EvalService`] (and of the [`EvalEngine`] facade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Worker threads used for batch evaluation (1 = fully sequential).
    pub threads: usize,
    /// Maximum number of memoised execution reports kept across all shards
    /// of the shared cache. Eviction is FIFO per shard and can only cost
    /// future cache hits — a recomputed report is always identical to the
    /// evicted one. `0` disables memoisation.
    pub cache_capacity: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            threads: 1,
            cache_capacity: 8_192,
        }
    }
}

/// Cumulative counters of one service (or one scenario's slice of it),
/// surfaced in CLI reports and `BENCH_*.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Worker threads the pool was configured with.
    pub threads: usize,
    /// Candidate evaluations requested (hits + misses).
    pub requests: u64,
    /// Requests answered from the memo-cache (including duplicates within
    /// one batch, which are simulated only once).
    pub cache_hits: u64,
    /// Requests that required an actual simulation.
    pub cache_misses: u64,
    /// Reports dropped by FIFO eviction after the cache filled up.
    pub evictions: u64,
}

impl EvalStats {
    /// Fraction of requests served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Number of simulations actually executed (= cache misses).
    pub fn simulations(&self) -> u64 {
        self.cache_misses
    }
}

/// One scenario's slice of a shared service's statistics, keyed by the
/// scenario fingerprint baked into every cache key. Evictions are
/// attributed to the scenario whose entry was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvalStats {
    /// The scenario fingerprint ([`WorkflowEnvironment::fingerprint`]).
    pub fingerprint: u64,
    /// Candidate evaluations requested for this scenario (hits + misses).
    pub requests: u64,
    /// Requests answered from the memo-cache.
    pub cache_hits: u64,
    /// Requests that required an actual simulation.
    pub cache_misses: u64,
    /// This scenario's reports dropped by FIFO eviction.
    pub evictions: u64,
}

impl ScenarioEvalStats {
    /// Fraction of this scenario's requests served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Number of simulations actually executed for this scenario.
    pub fn simulations(&self) -> u64 {
        self.cache_misses
    }
}

/// A point-in-time view of a whole [`EvalService`], produced by
/// [`EvalService::stats_snapshot`] — the payload a long-running daemon
/// serves from its metrics endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Aggregate counters over every scenario ever registered (monotonic
    /// across unregistration).
    pub stats: EvalStats,
    /// Number of scenarios currently registered.
    pub registered_scenarios: usize,
    /// Number of reports currently memoised across all shards.
    pub cached_entries: usize,
    /// The per-fingerprint breakdown of currently registered scenarios,
    /// ordered by fingerprint.
    pub scenarios: Vec<ScenarioEvalStats>,
    /// Evaluation calls (single probes or whole batches) executing right
    /// now — the service's queue-depth/saturation signal, polled by a
    /// daemon's admission control.
    pub inflight: usize,
    /// High-water mark of `inflight` since the service was created.
    pub inflight_peak: usize,
}

/// Exact-equality cache key of one candidate evaluation.
///
/// The *input bucket* is the bit pattern of the input's scale and payload:
/// two inputs fall into the same bucket iff they are numerically identical,
/// so a cache hit can never return the report of a different input. The
/// seed is normalised to 0 when the cluster models no runtime jitter
/// (reports are then seed-independent), which lets different search methods
/// share entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    input_bucket: (u64, u64),
    seed: u64,
    configs: Box<[(u64, u32)]>,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, SimResult>,
    order: VecDeque<CacheKey>,
}

/// Hit/miss/eviction counters of one scenario fingerprint. Shared (via
/// `Arc`) between the service registry and every handle of that scenario,
/// so per-scenario statistics survive handle drops.
#[derive(Debug, Default)]
struct ScenarioCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Candidates resolved by intra-batch dedup (identical key earlier in
    /// the same batch) — a subset of `hits`, broken out so the bench can
    /// tell memo-cache reuse from within-batch duplication.
    batch_dedup: AtomicU64,
}

/// The immutable per-scenario half of an evaluation: the compiled scenario,
/// its environment and options, and its statistics slice. Shared by
/// [`ScenarioHandle`]s and the [`EvalEngine`] facade via `Arc`.
#[derive(Debug)]
struct ScenarioData {
    env: WorkflowEnvironment,
    scenario: CompiledScenario,
    fingerprint: u64,
    options: EvalOptions,
    counters: Arc<ScenarioCounters>,
    /// The most recent exact probe `(configs, result)` of this
    /// registration, used as the incremental anchor for the next probe.
    /// Searcher probes mutate one path suffix per step, so consecutive
    /// probes usually share most of their timeline; reuse is exact
    /// (bit-identical results), so a stale or raced anchor can never
    /// change an outcome — only how much work it saves.
    probe_anchor: Mutex<Option<(ConfigMap, SimResult)>>,
}

/// Telemetry instruments for the evaluation substrate, registered on a
/// shared [`Recorder`] and attached to an [`EvalService`] with
/// [`EvalService::attach_telemetry`].
///
/// When no telemetry is attached the service takes **zero** timestamps —
/// the only overhead on the evaluation path is one atomic load per batch
/// (`OnceLock::get`), which keeps the bench gate's sims/sec unchanged.
/// When attached, each batch records its wall-clock latency split into
/// queue-wait (cache pre-pass, dedup, memo-cache insertion) and pure
/// simulation time, updates a sims/sec gauge, folds the kernel's work
/// counters into process counters, and appends an `eval_batch` event to
/// the flight recorder.
#[derive(Debug)]
pub struct EvalTelemetry {
    batch_seconds: Arc<Histogram>,
    probe_seconds: Arc<Histogram>,
    queue_wait_seconds: Arc<Histogram>,
    sim_seconds: Arc<Histogram>,
    sims_per_sec: Arc<Gauge>,
    kernel_sims: Arc<Counter>,
    node_starts: Arc<Counter>,
    oom_kills: Arc<Counter>,
    capacity_stalls: Arc<Counter>,
    flight: Arc<FlightRecorder>,
}

impl EvalTelemetry {
    /// Registers the evaluation metrics on `recorder` and wires events to
    /// `flight`.
    pub fn new(recorder: &Recorder, flight: Arc<FlightRecorder>) -> Self {
        EvalTelemetry {
            batch_seconds: recorder.histogram(
                "aarc_eval_batch_seconds",
                "Wall-clock latency of candidate evaluation batches.",
            ),
            probe_seconds: recorder.histogram(
                "aarc_eval_probe_seconds",
                "Wall-clock latency of single-candidate probe evaluations.",
            ),
            queue_wait_seconds: recorder.histogram(
                "aarc_eval_queue_wait_seconds",
                "Batch time outside the simulation pool: cache pre-pass, dedup and insertion.",
            ),
            sim_seconds: recorder.histogram(
                "aarc_eval_sim_seconds",
                "Batch time inside the simulation worker pool.",
            ),
            sims_per_sec: recorder.gauge(
                "aarc_sims_per_sec",
                "Simulation throughput of the most recent evaluation batch.",
            ),
            kernel_sims: recorder.counter(
                "aarc_kernel_simulations_total",
                "Completed discrete-event simulations.",
            ),
            node_starts: recorder.counter(
                "aarc_kernel_function_starts_total",
                "Function invocations started by the simulation kernel.",
            ),
            oom_kills: recorder.counter(
                "aarc_kernel_oom_kills_total",
                "Simulated invocations killed by the memory limit.",
            ),
            capacity_stalls: recorder.counter(
                "aarc_kernel_capacity_stalls_total",
                "Placement attempts that found no host with free capacity.",
            ),
            flight,
        }
    }

    /// The flight recorder events are appended to.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }
}

/// The process-wide evaluation substrate: the deterministic work-stealing
/// worker pool, the sharded fingerprint-keyed memo-cache and the
/// [`SimScratch`] arena pool, shared by every scenario registered on it.
///
/// Scenarios borrow the substrate through [`ScenarioHandle`]s
/// ([`EvalService::register`]); independent searches submit batches through
/// their handles and interleave on the shared pool. Statistics are kept per
/// scenario fingerprint ([`EvalService::scenario_stats`]) and in aggregate
/// ([`EvalService::stats`]).
#[derive(Debug)]
pub struct EvalService {
    options: EvalOptions,
    shards: Vec<Mutex<Shard>>,
    scratch_pool: Mutex<Vec<SimScratch>>,
    scenarios: Mutex<BTreeMap<u64, Arc<ScenarioCounters>>>,
    /// Counters folded in from unregistered scenarios, so the aggregate
    /// [`stats`](EvalService::stats) stays monotonic across the runtime
    /// scenario lifecycle (a `/metrics` scrape must never see totals drop).
    retired: ScenarioCounters,
    /// Optional instrumentation, attached at most once. Unset, the
    /// evaluation path takes no timestamps at all.
    telemetry: OnceLock<EvalTelemetry>,
    /// Evaluation calls (probes or batches) currently executing; see
    /// [`EvalService::inflight`].
    inflight: AtomicU64,
    /// High-water mark of `inflight`.
    inflight_peak: AtomicU64,
    /// Kernel work counters drained from every scratch arena returned to
    /// the pool — the service-wide view of how many simulations ran and
    /// which kernel path (event loop, relaxation, incremental) served
    /// them, regardless of whether telemetry is attached.
    kernel_totals: Mutex<KernelCounters>,
}

/// RAII marker of one in-flight evaluation call: increments the service's
/// saturation gauge on entry and decrements it on drop, even when the
/// evaluation errors.
struct InflightGuard<'a> {
    service: &'a EvalService,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.service.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl EvalService {
    /// Creates a service with the given pool and cache options.
    pub fn new(options: EvalOptions) -> Self {
        EvalService {
            options: EvalOptions {
                threads: options.threads.max(1),
                cache_capacity: options.cache_capacity,
            },
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            scratch_pool: Mutex::new(Vec::new()),
            scenarios: Mutex::new(BTreeMap::new()),
            retired: ScenarioCounters::default(),
            telemetry: OnceLock::new(),
            inflight: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            kernel_totals: Mutex::new(KernelCounters::default()),
        }
    }

    /// Number of evaluation calls (single probes or whole batches)
    /// executing right now. This is the service's saturation signal: a
    /// daemon sheds load when it — together with the live-session count —
    /// crosses an admission watermark.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst) as usize
    }

    /// High-water mark of [`inflight`](EvalService::inflight) since the
    /// service was created.
    pub fn inflight_peak(&self) -> usize {
        self.inflight_peak.load(Ordering::SeqCst) as usize
    }

    fn enter_inflight(&self) -> InflightGuard<'_> {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.inflight_peak.fetch_max(now, Ordering::SeqCst);
        InflightGuard { service: self }
    }

    /// Attaches telemetry instruments to the service. May be called at
    /// most once per service; subsequent calls are ignored (the first
    /// attachment wins) and the error carries the rejected instruments.
    pub fn attach_telemetry(&self, telemetry: EvalTelemetry) -> Result<(), EvalTelemetry> {
        self.telemetry.set(telemetry)
    }

    /// The attached telemetry instruments, if any.
    pub fn telemetry(&self) -> Option<&EvalTelemetry> {
        self.telemetry.get()
    }

    /// A service with `threads` workers and the default cache.
    pub fn with_threads(threads: usize) -> Self {
        EvalService::new(EvalOptions {
            threads,
            ..EvalOptions::default()
        })
    }

    /// The service's options (pool width and shared cache capacity).
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// Worker threads used for batch evaluation.
    pub fn threads(&self) -> usize {
        self.options.threads
    }

    /// Registers `env` on the service: compiles the scenario once and
    /// returns a cheap handle that submits evaluations through the shared
    /// pool and cache. Handles of environments with identical fingerprints
    /// share one statistics slice.
    pub fn register(&self, env: WorkflowEnvironment) -> ScenarioHandle<'_> {
        self.register_with(env, self.options)
    }

    /// [`register`](EvalService::register) with per-handle options: the
    /// handle's `threads` caps the fan-out of its batches (within the
    /// shared pool) and `cache_capacity == 0` opts this handle out of
    /// memoisation. The shared cache's capacity itself stays service-wide.
    pub fn register_with(
        &self,
        env: WorkflowEnvironment,
        options: EvalOptions,
    ) -> ScenarioHandle<'_> {
        ScenarioHandle {
            service: self,
            data: self.scenario_data(env, options),
        }
    }

    /// Compiles `env` into the shared per-scenario data block used by both
    /// handles and the [`EvalEngine`] facade.
    fn scenario_data(&self, env: WorkflowEnvironment, options: EvalOptions) -> Arc<ScenarioData> {
        let fingerprint = env.fingerprint();
        let scenario = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .expect("environment profiles are validated at build time");
        let counters = Arc::clone(
            self.scenarios
                .lock()
                .expect("scenario registry poisoned")
                .entry(fingerprint)
                .or_default(),
        );
        Arc::new(ScenarioData {
            env,
            scenario,
            fingerprint,
            options: EvalOptions {
                threads: options.threads.max(1),
                cache_capacity: options.cache_capacity,
            },
            counters,
            probe_anchor: Mutex::new(None),
        })
    }

    /// Unregisters a scenario from the service by fingerprint: drops its
    /// statistics slice from the registry (its counters are folded into a
    /// retired total, so the aggregate [`stats`](EvalService::stats) stays
    /// monotonic) and purges every cache entry carrying that fingerprint
    /// from all shards. Returns whether the fingerprint was registered.
    ///
    /// Outstanding [`ScenarioHandle`]s of the scenario keep working — they
    /// own the compiled scenario via `Arc` — but become statistically
    /// detached: their counter increments no longer show up in the
    /// service-wide statistics, and entries they re-insert are attributed
    /// to an unknown fingerprint until the scenario is registered again
    /// (which starts a fresh statistics slice).
    pub fn unregister(&self, fingerprint: u64) -> bool {
        let removed = self
            .scenarios
            .lock()
            .expect("scenario registry poisoned")
            .remove(&fingerprint);
        if let Some(counters) = &removed {
            self.retired
                .hits
                .fetch_add(counters.hits.load(Ordering::Relaxed), Ordering::Relaxed);
            self.retired
                .misses
                .fetch_add(counters.misses.load(Ordering::Relaxed), Ordering::Relaxed);
            self.retired.evictions.fetch_add(
                counters.evictions.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.retired.batch_dedup.fetch_add(
                counters.batch_dedup.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.order.retain(|k| k.fingerprint != fingerprint);
            s.map.retain(|k, _| k.fingerprint != fingerprint);
        }
        removed.is_some()
    }

    /// Aggregate statistics over every scenario ever registered on the
    /// service (unregistered scenarios' counters stay folded in).
    pub fn stats(&self) -> EvalStats {
        let mut hits = self.retired.hits.load(Ordering::Relaxed);
        let mut misses = self.retired.misses.load(Ordering::Relaxed);
        let mut evictions = self.retired.evictions.load(Ordering::Relaxed);
        for counters in self
            .scenarios
            .lock()
            .expect("scenario registry poisoned")
            .values()
        {
            hits += counters.hits.load(Ordering::Relaxed);
            misses += counters.misses.load(Ordering::Relaxed);
            evictions += counters.evictions.load(Ordering::Relaxed);
        }
        EvalStats {
            threads: self.options.threads,
            requests: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            evictions,
        }
    }

    /// The per-fingerprint statistics breakdown, ordered by fingerprint.
    /// One entry per distinct scenario ever registered, even if all of its
    /// handles have been dropped.
    pub fn scenario_stats(&self) -> Vec<ScenarioEvalStats> {
        self.scenarios
            .lock()
            .expect("scenario registry poisoned")
            .iter()
            .map(|(&fingerprint, counters)| {
                let hits = counters.hits.load(Ordering::Relaxed);
                let misses = counters.misses.load(Ordering::Relaxed);
                ScenarioEvalStats {
                    fingerprint,
                    requests: hits + misses,
                    cache_hits: hits,
                    cache_misses: misses,
                    evictions: counters.evictions.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// A point-in-time snapshot of the whole service, cheap enough to poll
    /// from a metrics endpoint: aggregate counters, the per-fingerprint
    /// breakdown, the number of currently registered scenarios and the
    /// number of memoised reports.
    pub fn stats_snapshot(&self) -> ServiceSnapshot {
        let scenarios = self.scenario_stats();
        ServiceSnapshot {
            stats: self.stats(),
            registered_scenarios: scenarios.len(),
            cached_entries: self.cached_entries(),
            scenarios,
            inflight: self.inflight(),
            inflight_peak: self.inflight_peak(),
        }
    }

    /// Candidates resolved by intra-batch dedup across every scenario ever
    /// registered (a subset of the aggregate cache hits): identical
    /// `(config, input, seed)` candidates within one batch simulate once
    /// and fan the result out.
    pub fn batch_dedup_hits(&self) -> u64 {
        let mut dedup = self.retired.batch_dedup.load(Ordering::Relaxed);
        for counters in self
            .scenarios
            .lock()
            .expect("scenario registry poisoned")
            .values()
        {
            dedup += counters.batch_dedup.load(Ordering::Relaxed);
        }
        dedup
    }

    /// Aggregate kernel work counters drained from every scratch arena the
    /// service has recycled: total simulations and the per-path breakdown
    /// (event loop vs. relaxation vs. incremental reuse). Arenas currently
    /// checked out by in-flight evaluations are not yet included.
    pub fn kernel_counters(&self) -> KernelCounters {
        *self.kernel_totals.lock().expect("kernel totals poisoned")
    }

    /// Number of reports currently memoised across all shards (all
    /// scenarios together).
    pub fn cached_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Drops every memoised report of every scenario (statistics are kept).
    /// Used by the bench harness to time cold batches.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.map.clear();
            s.order.clear();
        }
    }

    /// Evaluates one candidate of `data`'s scenario, consulting the shared
    /// memo-cache first.
    fn evaluate_data(
        &self,
        data: &ScenarioData,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        let _inflight = self.enter_inflight();
        let probe_start = self.telemetry.get().map(|_| Instant::now());
        let result = self.evaluate_data_inner(data, configs, input, seed);
        if let (Some(telemetry), Some(start)) = (self.telemetry.get(), probe_start) {
            telemetry.probe_seconds.record(start.elapsed());
        }
        result
    }

    fn evaluate_data_inner(
        &self,
        data: &ScenarioData,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        let key = Self::key(data, configs, input, seed);
        if let Some(result) = self.cache_get(data, &key) {
            data.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(result);
        }
        data.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut scratch = self.take_scratch();
        // Probe fast path: re-simulate incrementally off this
        // registration's previous exact probe when the kernel can prove
        // bit-identity, and simulate from scratch otherwise. Reuse is
        // exact either way, so a stale or raced anchor can never change a
        // result — only how much work it saves.
        let anchor = data
            .probe_anchor
            .lock()
            .expect("probe anchor poisoned")
            .clone();
        let incremental = anchor.as_ref().and_then(|(anchor_cfgs, anchor_result)| {
            data.scenario.try_incremental(
                &mut scratch,
                configs,
                input,
                seed,
                anchor_cfgs,
                anchor_result,
            )
        });
        let result = match incremental {
            Some(result) => Ok(result),
            None => data.scenario.simulate(&mut scratch, configs, input, seed),
        };
        self.put_scratch(scratch);
        let result = result?;
        if data.scenario.relaxation_exact(configs) {
            *data.probe_anchor.lock().expect("probe anchor poisoned") =
                Some((configs.clone(), result.clone()));
        }
        self.cache_insert(data, key, result.clone());
        Ok(result)
    }

    /// Evaluates a batch of candidates of `data`'s scenario. Candidate `i`
    /// runs with the derived seed `derive_seed(env.seed(), i)` — a function
    /// of its index only — and duplicates within the batch are simulated
    /// once, so the returned reports (and the statistics) are bit-identical
    /// regardless of the pool's thread count.
    fn evaluate_batch_data(
        &self,
        data: &ScenarioData,
        candidates: &[ConfigMap],
        input: InputSpec,
    ) -> Result<Vec<SimResult>, SimulatorError> {
        let _inflight = self.enter_inflight();
        let n = candidates.len();
        // One atomic load; `None` keeps the whole path free of clock reads.
        let telemetry = self.telemetry.get();
        let batch_start = telemetry.map(|_| Instant::now());
        let mut results: Vec<Option<SimResult>> = vec![None; n];
        // Sequential cache pre-pass in candidate order: resolve hits, claim
        // the first occurrence of every distinct missing key and remember
        // intra-batch duplicates. Counting duplicates as hits matches the
        // sequential (1-thread) semantics exactly.
        let mut claimed: HashMap<CacheKey, usize> = HashMap::new();
        let mut pending: Vec<(usize, CacheKey, u64)> = Vec::new();
        let mut duplicates: Vec<(usize, usize)> = Vec::new();
        let mut batch_hits = 0u64;
        for (i, configs) in candidates.iter().enumerate() {
            let seed = derive_seed(data.env.seed(), i as u64);
            let key = Self::key(data, configs, input, seed);
            if let Some(report) = self.cache_get(data, &key) {
                data.counters.hits.fetch_add(1, Ordering::Relaxed);
                batch_hits += 1;
                results[i] = Some(report);
            } else if let Some(&p) = claimed.get(&key) {
                data.counters.hits.fetch_add(1, Ordering::Relaxed);
                data.counters.batch_dedup.fetch_add(1, Ordering::Relaxed);
                batch_hits += 1;
                duplicates.push((i, p));
            } else {
                data.counters.misses.fetch_add(1, Ordering::Relaxed);
                claimed.insert(key.clone(), pending.len());
                pending.push((i, key, seed));
            }
        }

        // Simulate all distinct misses on the worker pool.
        let sim_start = telemetry.map(|_| Instant::now());
        let computed = self.run_pool(data, candidates, input, &pending);
        let sim_ns = sim_start.map_or(0, |s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64);

        // Insert in candidate order (deterministic eviction), then resolve
        // duplicates from the freshly computed results.
        let mut evicted = 0usize;
        let mut fresh: Vec<Option<SimResult>> = Vec::with_capacity(pending.len());
        for ((i, key, _seed), outcome) in pending.iter().zip(computed) {
            let report = outcome?;
            evicted += self.cache_insert(data, key.clone(), report.clone());
            results[*i] = Some(report.clone());
            fresh.push(Some(report));
        }
        let dedup_hits = duplicates.len() as u64;
        for (i, p) in duplicates {
            results[i] = fresh[p].clone();
        }

        if let (Some(telemetry), Some(start)) = (telemetry, batch_start) {
            let total_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            telemetry.batch_seconds.record_ns(total_ns);
            telemetry.sim_seconds.record_ns(sim_ns);
            telemetry
                .queue_wait_seconds
                .record_ns(total_ns.saturating_sub(sim_ns));
            if sim_ns > 0 && !pending.is_empty() {
                telemetry
                    .sims_per_sec
                    .set(pending.len() as f64 / (sim_ns as f64 / 1e9));
            }
            telemetry.flight.record(
                "eval_batch",
                vec![
                    (
                        "fingerprint",
                        FieldValue::Str(format!("{:016x}", data.fingerprint)),
                    ),
                    ("candidates", FieldValue::U64(n as u64)),
                    ("hits", FieldValue::U64(batch_hits)),
                    ("dedup", FieldValue::U64(dedup_hits)),
                    ("misses", FieldValue::U64(pending.len() as u64)),
                    ("evictions", FieldValue::U64(evicted as u64)),
                    (
                        "queue_us",
                        FieldValue::U64(total_ns.saturating_sub(sim_ns) / 1_000),
                    ),
                    ("sim_us", FieldValue::U64(sim_ns / 1_000)),
                    ("total_us", FieldValue::U64(total_ns / 1_000)),
                ],
            );
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every candidate resolved"))
            .collect())
    }

    /// Materialises the full [`ExecutionReport`] of one candidate of
    /// `data`'s scenario (bypasses the memo-cache; see
    /// [`ScenarioHandle::materialize`]).
    fn materialize_data(
        &self,
        data: &ScenarioData,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        let mut scratch = self.take_scratch();
        let report = data
            .scenario
            .simulate_report(&mut scratch, configs, input, seed);
        self.put_scratch(scratch);
        report
    }

    /// Borrows a scratch arena from the pool (or creates one on first use).
    fn take_scratch(&self) -> SimScratch {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch arena to the pool for the next evaluation,
    /// draining the kernel's accumulated work counters into the
    /// service-wide totals (and, when telemetry is attached, into the
    /// process metrics — plain integer adds, never timestamps).
    fn put_scratch(&self, mut scratch: SimScratch) {
        let counters = scratch.take_counters();
        self.kernel_totals
            .lock()
            .expect("kernel totals poisoned")
            .merge(&counters);
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.kernel_sims.add(counters.sims);
            telemetry.node_starts.add(counters.node_starts);
            telemetry.oom_kills.add(counters.oom_kills);
            telemetry.capacity_stalls.add(counters.capacity_stalls);
        }
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Chunk width of the batch scheduler. A pure function of the number
    /// of pending jobs — never of the thread count — so chunk boundaries,
    /// and with them each chunk's fresh incremental-anchor chain and the
    /// kernel-counter stream, are identical at every pool width. `/64`
    /// yields enough chunks for stealing to even out stragglers on large
    /// batches; the 8..=512 clamp bounds per-chunk scheduling overhead on
    /// small ones and tail latency on huge ones.
    fn batch_chunk_size(jobs: usize) -> usize {
        (jobs / 64).clamp(8, 512)
    }

    /// Pops the next chunk index for worker `w`: the front of its own
    /// deque, else a steal from the back of the longest other deque.
    /// Workers never generate new chunks, so `None` (every deque observed
    /// empty and no steal landed) means the batch is drained.
    fn next_chunk(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
        if let Some(c) = queues[w].lock().expect("work queue poisoned").pop_front() {
            return Some(c);
        }
        loop {
            let mut victim = None;
            let mut victim_len = 0;
            for (v, queue) in queues.iter().enumerate() {
                if v == w {
                    continue;
                }
                let len = queue.lock().expect("work queue poisoned").len();
                if len > victim_len {
                    victim = Some(v);
                    victim_len = len;
                }
            }
            let victim = victim?;
            if let Some(c) = queues[victim]
                .lock()
                .expect("work queue poisoned")
                .pop_back()
            {
                return Some(c);
            }
            // Raced with the victim draining its own deque — rescan.
        }
    }

    /// Runs the distinct misses of a batch on the worker pool, returning
    /// outcomes in `pending` order.
    ///
    /// The batch is cut into fixed-width chunks
    /// ([`batch_chunk_size`](Self::batch_chunk_size)), dealt round-robin
    /// onto per-worker deques; a worker drains its own deque from the
    /// front and steals from the back of the longest other deque when
    /// empty, so a straggler chunk never idles the rest of the pool the
    /// way the old fork-join static split did. Each worker runs one
    /// [`BatchSim`] and one scratch arena for its whole share; every chunk
    /// starts a fresh incremental-anchor chain and carries positional
    /// seeds, so *which* worker runs a chunk — and any stealing order — is
    /// invisible in the results: streams are bit-identical at every thread
    /// count. With one worker (or one chunk) everything runs on the
    /// calling thread through the same chunking.
    fn run_pool(
        &self,
        data: &ScenarioData,
        candidates: &[ConfigMap],
        input: InputSpec,
        pending: &[(usize, CacheKey, u64)],
    ) -> Vec<Result<SimResult, SimulatorError>> {
        if pending.is_empty() {
            return Vec::new();
        }
        let chunk = Self::batch_chunk_size(pending.len());
        let chunk_count = pending.len().div_ceil(chunk);
        let threads = data
            .options
            .threads
            .min(self.options.threads)
            .min(chunk_count)
            .max(1);
        if threads <= 1 {
            let mut scratch = self.take_scratch();
            let mut batch = BatchSim::new(&data.scenario, input);
            let mut results = Vec::with_capacity(pending.len());
            let mut job_list: Vec<(&ConfigMap, u64)> = Vec::with_capacity(chunk);
            for jobs in pending.chunks(chunk) {
                job_list.clear();
                job_list.extend(jobs.iter().map(|(i, _, seed)| (&candidates[*i], *seed)));
                results.extend(batch.simulate_chunk(&mut scratch, &job_list));
            }
            self.put_scratch(scratch);
            return results;
        }

        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for c in 0..chunk_count {
            queues[c % threads]
                .lock()
                .expect("work queue poisoned")
                .push_back(c);
        }
        let mut slots: Vec<Option<Vec<Result<SimResult, SimulatorError>>>> = Vec::new();
        slots.resize_with(chunk_count, || None);
        std::thread::scope(|scope| {
            let queues = &queues;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let mut scratch = self.take_scratch();
                        let mut batch = BatchSim::new(&data.scenario, input);
                        let mut done: Vec<(usize, Vec<Result<SimResult, SimulatorError>>)> =
                            Vec::new();
                        let mut job_list: Vec<(&ConfigMap, u64)> = Vec::with_capacity(chunk);
                        while let Some(c) = Self::next_chunk(queues, w) {
                            let jobs = &pending[c * chunk..pending.len().min((c + 1) * chunk)];
                            job_list.clear();
                            job_list
                                .extend(jobs.iter().map(|(i, _, seed)| (&candidates[*i], *seed)));
                            done.push((c, batch.simulate_chunk(&mut scratch, &job_list)));
                        }
                        self.put_scratch(scratch);
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (c, results) in handle.join().expect("evaluation worker panicked") {
                    slots[c] = Some(results);
                }
            }
        });
        slots
            .into_iter()
            .flat_map(|s| s.expect("every chunk processed exactly once"))
            .collect()
    }

    /// Builds the exact cache key of one evaluation. The seed is dropped
    /// from the key when the cluster models no jitter, because the report is
    /// then seed-independent.
    fn key(data: &ScenarioData, configs: &ConfigMap, input: InputSpec, seed: u64) -> CacheKey {
        let key_seed = if data.env.cluster().runtime_jitter > 0.0 {
            seed
        } else {
            0
        };
        CacheKey {
            fingerprint: data.fingerprint,
            input_bucket: (input.scale.to_bits(), input.payload_mb.to_bits()),
            seed: key_seed,
            configs: configs
                .as_slice()
                .iter()
                .map(|c| (c.vcpu.get().to_bits(), c.memory.get()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Whether memoisation is active for this handle: both the service's
    /// shared capacity and the handle's own options must allow it.
    fn cache_enabled(&self, data: &ScenarioData) -> bool {
        self.options.cache_capacity > 0 && data.options.cache_capacity > 0
    }

    fn cache_get(&self, data: &ScenarioData, key: &CacheKey) -> Option<SimResult> {
        if !self.cache_enabled(data) {
            return None;
        }
        self.shard_of(key)
            .lock()
            .expect("cache shard poisoned")
            .map
            .get(key)
            .cloned()
    }

    /// Memoises `result` under `key`; returns how many entries were
    /// evicted to make room (feeds the flight recorder's batch events).
    fn cache_insert(&self, data: &ScenarioData, key: CacheKey, result: SimResult) -> usize {
        if !self.cache_enabled(data) {
            return 0;
        }
        let per_shard = (self.options.cache_capacity / SHARD_COUNT).max(1);
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        let mut evicted = 0;
        if shard.map.insert(key.clone(), result).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > per_shard {
                let oldest = shard.order.pop_front().expect("order tracks map");
                shard.map.remove(&oldest);
                self.count_eviction(data, oldest.fingerprint);
                evicted += 1;
            }
        }
        evicted
    }

    /// Attributes one eviction to the scenario whose entry was dropped —
    /// with a shared cache that is not necessarily the submitting scenario.
    fn count_eviction(&self, data: &ScenarioData, evicted_fingerprint: u64) {
        if evicted_fingerprint == data.fingerprint {
            data.counters.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(counters) = self
            .scenarios
            .lock()
            .expect("scenario registry poisoned")
            .get(&evicted_fingerprint)
        {
            counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for EvalService {
    fn default() -> Self {
        EvalService::new(EvalOptions::default())
    }
}

/// A cheap per-scenario view onto a shared [`EvalService`]: the compiled
/// scenario plus [`EvalOptions`]. Cloning a handle clones an `Arc`, not the
/// compiled scenario.
///
/// Searchers submit candidates through [`evaluate`](ScenarioHandle::evaluate)
/// / [`evaluate_batch`](ScenarioHandle::evaluate_batch); the service
/// short-circuits repeated simulations through the shared memo-cache and
/// fans independent candidates out over the shared worker pool.
#[derive(Debug, Clone)]
pub struct ScenarioHandle<'s> {
    service: &'s EvalService,
    data: Arc<ScenarioData>,
}

impl<'s> ScenarioHandle<'s> {
    /// The service this handle submits through.
    pub fn service(&self) -> &'s EvalService {
        self.service
    }

    /// The wrapped environment (workflow, profiles, space, pricing, ...).
    pub fn env(&self) -> &WorkflowEnvironment {
        &self.data.env
    }

    /// The compiled scenario every evaluation runs against.
    pub fn scenario(&self) -> &CompiledScenario {
        &self.data.scenario
    }

    /// The handle's options.
    pub fn options(&self) -> EvalOptions {
        self.data.options
    }

    /// Worker threads this handle's batches fan out over.
    pub fn threads(&self) -> usize {
        self.data.options.threads.min(self.service.options.threads)
    }

    /// The scenario fingerprint baked into every cache key.
    pub fn fingerprint(&self) -> u64 {
        self.data.fingerprint
    }

    /// Evaluates one candidate with the environment's default input and
    /// seed, consulting the shared memo-cache first.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn evaluate(&self, configs: &ConfigMap) -> Result<SimResult, SimulatorError> {
        self.evaluate_with(configs, self.data.env.input(), self.data.env.seed())
    }

    /// Evaluates one candidate with full control over input and seed,
    /// consulting the shared memo-cache first.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn evaluate_with(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        self.service.evaluate_data(&self.data, configs, input, seed)
    }

    /// Evaluates a batch of candidates with the environment's default input.
    ///
    /// Candidate `i` runs with the derived seed `derive_seed(env.seed(), i)`
    /// — a function of its index only — and duplicates within the batch are
    /// simulated once, so the returned reports (and the cache statistics)
    /// are bit-identical regardless of the pool's thread count.
    ///
    /// # Errors
    ///
    /// Returns the first error in candidate order.
    pub fn evaluate_batch(
        &self,
        candidates: &[ConfigMap],
    ) -> Result<Vec<SimResult>, SimulatorError> {
        self.evaluate_batch_with(candidates, self.data.env.input())
    }

    /// [`evaluate_batch`](ScenarioHandle::evaluate_batch) with an explicit
    /// input.
    ///
    /// # Errors
    ///
    /// Returns the first error in candidate order.
    pub fn evaluate_batch_with(
        &self,
        candidates: &[ConfigMap],
        input: InputSpec,
    ) -> Result<Vec<SimResult>, SimulatorError> {
        self.service
            .evaluate_batch_data(&self.data, candidates, input)
    }

    /// Materialises the full [`ExecutionReport`] (per-function names and the
    /// complete event trace) of one candidate. This deliberately bypasses
    /// the memo-cache — reports are only produced for search winners and
    /// CLI `run` output, never on the hot path — and is bit-identical to
    /// the [`SimResult`] of the same `(configs, input, seed)` triple.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate_report`].
    pub fn materialize(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        self.service
            .materialize_data(&self.data, configs, input, seed)
    }

    /// [`materialize`](ScenarioHandle::materialize) for the exact `(input,
    /// seed)` a [`SimResult`] was produced under — the way a search winner's
    /// full report is recovered without risking a contradictory re-roll
    /// under runtime jitter.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate_report`].
    pub fn materialize_result(
        &self,
        configs: &ConfigMap,
        result: &SimResult,
    ) -> Result<ExecutionReport, SimulatorError> {
        self.materialize(configs, result.input(), result.seed())
    }

    /// This scenario's slice of the service's cumulative statistics
    /// (`threads` reports the handle's effective fan-out).
    pub fn stats(&self) -> EvalStats {
        let hits = self.data.counters.hits.load(Ordering::Relaxed);
        let misses = self.data.counters.misses.load(Ordering::Relaxed);
        EvalStats {
            threads: self.threads(),
            requests: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            evictions: self.data.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// This scenario's statistics in per-fingerprint form.
    pub fn scenario_stats(&self) -> ScenarioEvalStats {
        let hits = self.data.counters.hits.load(Ordering::Relaxed);
        let misses = self.data.counters.misses.load(Ordering::Relaxed);
        ScenarioEvalStats {
            fingerprint: self.data.fingerprint,
            requests: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            evictions: self.data.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Candidates of this scenario resolved by intra-batch dedup (a subset
    /// of its cache hits): identical `(config, input, seed)` candidates
    /// within one [`evaluate_batch`](ScenarioHandle::evaluate_batch)
    /// simulate once and fan the result out.
    pub fn batch_dedup_hits(&self) -> u64 {
        self.data.counters.batch_dedup.load(Ordering::Relaxed)
    }

    /// The service-wide kernel work counters (shared across scenarios —
    /// scratch arenas are pooled service-wide). Exposes the layout
    /// observables [`KernelCounters::allocs_per_sim`] and
    /// [`KernelCounters::bytes_per_sim`] next to the per-path simulation
    /// split.
    pub fn kernel_counters(&self) -> KernelCounters {
        self.service.kernel_counters()
    }
}

/// The single-scenario candidate-evaluation engine: a thin compatibility
/// facade over a private [`EvalService`] with exactly one registered
/// scenario.
///
/// Pre-service code (CLI `run`, tests, examples) keeps working unchanged;
/// anything that evaluates more than one scenario — `aarc sweep`, the
/// input-aware engine, the bench harness — should share one
/// [`EvalService`] and hold [`ScenarioHandle`]s instead. Use
/// [`EvalEngine::handle`] to lend this engine's scenario to handle-based
/// APIs.
#[derive(Debug)]
pub struct EvalEngine {
    service: EvalService,
    data: Arc<ScenarioData>,
}

impl EvalEngine {
    /// Creates an engine over `env` with the given options.
    pub fn new(env: WorkflowEnvironment, options: EvalOptions) -> Self {
        let service = EvalService::new(options);
        let data = service.scenario_data(env, service.options);
        EvalEngine { service, data }
    }

    /// A sequential engine with the default cache (the drop-in replacement
    /// for calling the executor directly).
    pub fn single_threaded(env: WorkflowEnvironment) -> Self {
        EvalEngine::new(env, EvalOptions::default())
    }

    /// An engine with `threads` workers and the default cache.
    pub fn with_threads(env: WorkflowEnvironment, threads: usize) -> Self {
        EvalEngine::new(
            env,
            EvalOptions {
                threads,
                ..EvalOptions::default()
            },
        )
    }

    /// The engine's scenario as a [`ScenarioHandle`] on its private
    /// service — the bridge from facade-based call sites into handle-based
    /// APIs (ask/tell drivers, the sweep runner).
    pub fn handle(&self) -> ScenarioHandle<'_> {
        ScenarioHandle {
            service: &self.service,
            data: Arc::clone(&self.data),
        }
    }

    /// The underlying single-scenario service.
    pub fn service(&self) -> &EvalService {
        &self.service
    }

    /// The wrapped environment (workflow, profiles, space, pricing, ...).
    pub fn env(&self) -> &WorkflowEnvironment {
        &self.data.env
    }

    /// The compiled scenario every evaluation runs against.
    pub fn scenario(&self) -> &CompiledScenario {
        &self.data.scenario
    }

    /// The engine's options.
    pub fn options(&self) -> EvalOptions {
        self.data.options
    }

    /// Worker threads used for batch evaluation.
    pub fn threads(&self) -> usize {
        self.data.options.threads
    }

    /// The scenario fingerprint baked into every cache key.
    pub fn fingerprint(&self) -> u64 {
        self.data.fingerprint
    }

    /// Evaluates one candidate with the environment's default input and
    /// seed, consulting the memo-cache first.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn evaluate(&self, configs: &ConfigMap) -> Result<SimResult, SimulatorError> {
        self.evaluate_with(configs, self.data.env.input(), self.data.env.seed())
    }

    /// Evaluates one candidate with full control over input and seed,
    /// consulting the memo-cache first.
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate`].
    pub fn evaluate_with(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<SimResult, SimulatorError> {
        self.service.evaluate_data(&self.data, configs, input, seed)
    }

    /// Materialises the full [`ExecutionReport`] of one candidate (see
    /// [`ScenarioHandle::materialize`]).
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate_report`].
    pub fn materialize(
        &self,
        configs: &ConfigMap,
        input: InputSpec,
        seed: u64,
    ) -> Result<ExecutionReport, SimulatorError> {
        self.service
            .materialize_data(&self.data, configs, input, seed)
    }

    /// [`materialize`](EvalEngine::materialize) for the exact `(input,
    /// seed)` a [`SimResult`] was produced under (see
    /// [`ScenarioHandle::materialize_result`]).
    ///
    /// # Errors
    ///
    /// See [`CompiledScenario::simulate_report`].
    pub fn materialize_result(
        &self,
        configs: &ConfigMap,
        result: &SimResult,
    ) -> Result<ExecutionReport, SimulatorError> {
        self.materialize(configs, result.input(), result.seed())
    }

    /// Evaluates a batch of candidates with the environment's default input
    /// (see [`ScenarioHandle::evaluate_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the first error in candidate order.
    pub fn evaluate_batch(
        &self,
        candidates: &[ConfigMap],
    ) -> Result<Vec<SimResult>, SimulatorError> {
        self.evaluate_batch_with(candidates, self.data.env.input())
    }

    /// [`evaluate_batch`](EvalEngine::evaluate_batch) with an explicit
    /// input.
    ///
    /// # Errors
    ///
    /// Returns the first error in candidate order.
    pub fn evaluate_batch_with(
        &self,
        candidates: &[ConfigMap],
        input: InputSpec,
    ) -> Result<Vec<SimResult>, SimulatorError> {
        self.service
            .evaluate_batch_data(&self.data, candidates, input)
    }

    /// The engine's cumulative statistics.
    pub fn stats(&self) -> EvalStats {
        let hits = self.data.counters.hits.load(Ordering::Relaxed);
        let misses = self.data.counters.misses.load(Ordering::Relaxed);
        EvalStats {
            threads: self.data.options.threads,
            requests: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            evictions: self.data.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of reports currently memoised across all shards.
    pub fn cached_entries(&self) -> usize {
        self.service.cached_entries()
    }

    /// Drops every memoised report (statistics are kept). Used by the bench
    /// harness to time cold batches.
    pub fn clear_cache(&self) {
        self.service.clear_cache();
    }
}

// The worker pool shares `&WorkflowEnvironment` across threads.
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<WorkflowEnvironment>();
    assert_sync::<EvalService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::perf_model::{FunctionProfile, ProfileSet};
    use crate::resources::ResourceConfig;
    use aarc_workflow::WorkflowBuilder;

    fn env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("eval-test");
        let a = b.add_function("a");
        let c = b.add_function("b");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("a")
                .serial_ms(1_000.0)
                .parallel_ms(4_000.0)
                .max_parallelism(4.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(c, FunctionProfile::builder("b").serial_ms(500.0).build());
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    fn jittery_env() -> WorkflowEnvironment {
        let base = env();
        WorkflowEnvironment::builder(base.workflow().clone(), base.profiles().clone())
            .cluster(ClusterSpec::paper_testbed_with_jitter(0.05))
            .build()
            .unwrap()
    }

    fn candidates(n: usize) -> Vec<ConfigMap> {
        (0..n)
            .map(|i| {
                ConfigMap::uniform(
                    2,
                    ResourceConfig::new(1.0 + (i % 7) as f64, 512 + 64 * (i as u32 % 9)),
                )
            })
            .collect()
    }

    #[test]
    fn single_evaluation_matches_direct_execution() {
        let e = env();
        let engine = EvalEngine::single_threaded(e.clone());
        let cfg = e.base_configs();
        let direct = e.execute(&cfg).unwrap();
        let via_engine = engine.evaluate(&cfg).unwrap();
        assert_eq!(direct.makespan_ms(), via_engine.makespan_ms());
        assert_eq!(direct.total_cost(), via_engine.total_cost());
        assert_eq!(direct.any_oom(), via_engine.any_oom());
        for exec in direct.executions() {
            assert_eq!(
                via_engine.runtime_of(exec.node),
                Some(exec.runtime_ms),
                "{}",
                exec.node
            );
            assert_eq!(via_engine.cost_of(exec.node), Some(exec.cost));
        }
        // Materialising the winner recovers the identical full report.
        let materialised = engine.materialize_result(&cfg, &via_engine).unwrap();
        assert_eq!(direct, materialised);
    }

    #[test]
    fn repeated_evaluations_hit_the_cache() {
        let engine = EvalEngine::single_threaded(env());
        let cfg = engine.env().base_configs();
        let first = engine.evaluate(&cfg).unwrap();
        let second = engine.evaluate(&cfg).unwrap();
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.simulations(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn seed_is_normalised_out_of_the_key_without_jitter() {
        let engine = EvalEngine::single_threaded(env());
        let cfg = engine.env().base_configs();
        engine.evaluate_with(&cfg, InputSpec::nominal(), 1).unwrap();
        engine.evaluate_with(&cfg, InputSpec::nominal(), 2).unwrap();
        assert_eq!(
            engine.stats().cache_hits,
            1,
            "seed-independent reports must share entries"
        );

        let jittered = EvalEngine::single_threaded(jittery_env());
        let cfg = jittered.env().base_configs();
        let a = jittered
            .evaluate_with(&cfg, InputSpec::nominal(), 1)
            .unwrap();
        let b = jittered
            .evaluate_with(&cfg, InputSpec::nominal(), 2)
            .unwrap();
        assert_eq!(
            jittered.stats().cache_hits,
            0,
            "jittered reports are seed-specific"
        );
        assert_ne!(a.makespan_ms(), b.makespan_ms());
    }

    #[test]
    fn different_inputs_use_different_buckets() {
        let engine = EvalEngine::single_threaded(env());
        let cfg = engine.env().base_configs();
        let heavy = engine
            .evaluate_with(&cfg, InputSpec::new(2.0, 64.0), 0)
            .unwrap();
        let light = engine
            .evaluate_with(&cfg, InputSpec::new(0.5, 2.0), 0)
            .unwrap();
        assert_eq!(engine.stats().cache_hits, 0);
        assert!(heavy.makespan_ms() > light.makespan_ms());
    }

    #[test]
    fn batch_results_are_identical_across_thread_counts() {
        let cfgs = candidates(40);
        let sequential = EvalEngine::with_threads(env(), 1);
        let parallel = EvalEngine::with_threads(env(), 8);
        let a = sequential.evaluate_batch(&cfgs).unwrap();
        let b = parallel.evaluate_batch(&cfgs).unwrap();
        assert_eq!(a, b);
        assert_eq!(sequential.stats().cache_hits, parallel.stats().cache_hits);
        assert_eq!(
            sequential.stats().cache_misses,
            parallel.stats().cache_misses
        );
    }

    #[test]
    fn jittered_batches_are_identical_across_thread_counts() {
        let cfgs = candidates(24);
        let sequential = EvalEngine::with_threads(jittery_env(), 1);
        let parallel = EvalEngine::with_threads(jittery_env(), 5);
        let a = sequential.evaluate_batch(&cfgs).unwrap();
        let b = parallel.evaluate_batch(&cfgs).unwrap();
        assert_eq!(
            a, b,
            "derived per-candidate seeds must decouple results from threads"
        );
    }

    #[test]
    fn batch_duplicates_are_simulated_once_and_counted_as_hits() {
        let one = ConfigMap::uniform(2, ResourceConfig::new(2.0, 1_024));
        let cfgs = vec![one.clone(), one.clone(), one.clone(), one];
        let engine = EvalEngine::with_threads(env(), 4);
        let reports = engine.evaluate_batch(&cfgs).unwrap();
        assert_eq!(reports.len(), 4);
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn eviction_never_changes_results() {
        let tiny = EvalEngine::new(
            env(),
            EvalOptions {
                threads: 1,
                cache_capacity: SHARD_COUNT, // one entry per shard
            },
        );
        let reference = EvalEngine::new(
            env(),
            EvalOptions {
                threads: 1,
                cache_capacity: 0, // memoisation disabled entirely
            },
        );
        let cfgs = candidates(60);
        // Fill way past capacity, then walk the set again: many entries have
        // been evicted and recomputed, but every report must match the
        // uncached reference.
        let first = tiny.evaluate_batch(&cfgs).unwrap();
        let second = tiny.evaluate_batch(&cfgs).unwrap();
        let fresh = reference.evaluate_batch(&cfgs).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, fresh);
        assert!(tiny.stats().evictions > 0, "capacity pressure must evict");
        assert!(tiny.cached_entries() <= SHARD_COUNT);
        assert_eq!(reference.cached_entries(), 0);
        assert_eq!(reference.stats().cache_hits, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = EvalEngine::single_threaded(env());
        assert!(engine.evaluate_batch(&[]).unwrap().is_empty());
        assert_eq!(engine.stats().requests, 0);
    }

    #[test]
    fn batch_errors_propagate_deterministically() {
        let mut bad = candidates(6);
        bad[3] = ConfigMap::uniform(2, ResourceConfig::new(500.0, 512)); // unplaceable
        let sequential = EvalEngine::with_threads(env(), 1);
        let parallel = EvalEngine::with_threads(env(), 4);
        let a = sequential.evaluate_batch(&bad).unwrap_err();
        let b = parallel.evaluate_batch(&bad).unwrap_err();
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn clear_cache_forgets_entries_but_keeps_stats() {
        let engine = EvalEngine::single_threaded(env());
        let cfg = engine.env().base_configs();
        engine.evaluate(&cfg).unwrap();
        assert_eq!(engine.cached_entries(), 1);
        engine.clear_cache();
        assert_eq!(engine.cached_entries(), 0);
        assert_eq!(engine.stats().cache_misses, 1);
        engine.evaluate(&cfg).unwrap();
        assert_eq!(engine.stats().cache_misses, 2, "cleared entries recompute");
    }

    #[test]
    fn derive_seed_is_index_sensitive_and_stable() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn fingerprint_distinguishes_environments() {
        let a = EvalEngine::single_threaded(env());
        let b = EvalEngine::single_threaded(env());
        let c = EvalEngine::single_threaded(jittery_env());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    // ----- service / handle tests -------------------------------------

    #[test]
    fn handle_results_match_the_facade_exactly() {
        let cfgs = candidates(20);
        let engine = EvalEngine::with_threads(env(), 4);
        let service = EvalService::with_threads(4);
        let handle = service.register(env());
        let via_engine = engine.evaluate_batch(&cfgs).unwrap();
        let via_handle = handle.evaluate_batch(&cfgs).unwrap();
        assert_eq!(via_engine, via_handle);
        assert_eq!(engine.stats(), handle.stats());
        assert_eq!(engine.fingerprint(), handle.fingerprint());
    }

    #[test]
    fn two_scenarios_share_one_cache_without_leaking() {
        let service = EvalService::with_threads(2);
        let plain = service.register(env());
        let jittered = service.register(jittery_env());
        let cfg = plain.env().base_configs();
        let a = plain.evaluate(&cfg).unwrap();
        let b = jittered.evaluate(&cfg).unwrap();
        // Identical configs, different scenario fingerprints: both must
        // miss (no cross-scenario leak), and both entries coexist.
        assert_ne!(a.makespan_ms(), b.makespan_ms());
        assert_eq!(service.stats().cache_misses, 2);
        assert_eq!(service.stats().cache_hits, 0);
        assert_eq!(service.cached_entries(), 2);
        // Re-evaluating through either handle hits its own entry.
        plain.evaluate(&cfg).unwrap();
        jittered.evaluate(&cfg).unwrap();
        assert_eq!(service.stats().cache_hits, 2);
    }

    #[test]
    fn per_scenario_stats_split_the_aggregate() {
        let service = EvalService::with_threads(1);
        let plain = service.register(env());
        let jittered = service.register(jittery_env());
        let cfg = plain.env().base_configs();
        plain.evaluate(&cfg).unwrap();
        plain.evaluate(&cfg).unwrap();
        jittered.evaluate(&cfg).unwrap();
        let breakdown = service.scenario_stats();
        assert_eq!(breakdown.len(), 2);
        let plain_slice = breakdown
            .iter()
            .find(|s| s.fingerprint == plain.fingerprint())
            .unwrap();
        let jitter_slice = breakdown
            .iter()
            .find(|s| s.fingerprint == jittered.fingerprint())
            .unwrap();
        assert_eq!(plain_slice.requests, 2);
        assert_eq!(plain_slice.cache_hits, 1);
        assert_eq!(jitter_slice.requests, 1);
        assert_eq!(jitter_slice.cache_hits, 0);
        let total = service.stats();
        assert_eq!(total.requests, plain_slice.requests + jitter_slice.requests);
        assert_eq!(
            total.cache_hits,
            plain_slice.cache_hits + jitter_slice.cache_hits
        );
        // Fingerprints are ordered in the breakdown.
        assert!(breakdown[0].fingerprint < breakdown[1].fingerprint);
    }

    #[test]
    fn handles_of_the_same_scenario_share_counters_and_entries() {
        let service = EvalService::with_threads(1);
        let first = service.register(env());
        let second = service.register(env());
        let cfg = first.env().base_configs();
        first.evaluate(&cfg).unwrap();
        second.evaluate(&cfg).unwrap();
        assert_eq!(second.stats().cache_hits, 1, "same fingerprint shares");
        assert_eq!(service.scenario_stats().len(), 1);
        assert_eq!(service.stats().requests, 2);
    }

    #[test]
    fn handle_options_can_opt_out_of_the_shared_cache() {
        let service = EvalService::with_threads(1);
        let uncached = service.register_with(
            env(),
            EvalOptions {
                threads: 1,
                cache_capacity: 0,
            },
        );
        let cfg = uncached.env().base_configs();
        uncached.evaluate(&cfg).unwrap();
        uncached.evaluate(&cfg).unwrap();
        assert_eq!(uncached.stats().cache_hits, 0);
        assert_eq!(service.cached_entries(), 0);
    }

    #[test]
    fn eviction_is_attributed_to_the_owning_scenario() {
        let service = EvalService::new(EvalOptions {
            threads: 1,
            cache_capacity: SHARD_COUNT, // one entry per shard
        });
        let plain = service.register(env());
        let jittered = service.register(jittery_env());
        let cfgs = candidates(60);
        plain.evaluate_batch(&cfgs).unwrap();
        jittered.evaluate_batch(&cfgs).unwrap();
        let breakdown = service.scenario_stats();
        let evicted: u64 = breakdown.iter().map(|s| s.evictions).sum();
        assert!(evicted > 0, "capacity pressure must evict");
        assert_eq!(service.stats().evictions, evicted);
    }

    #[test]
    fn unregister_purges_cache_entries_and_keeps_totals_monotonic() {
        let service = EvalService::with_threads(1);
        let plain = service.register(env());
        let jittered = service.register(jittery_env());
        let cfg = plain.env().base_configs();
        plain.evaluate(&cfg).unwrap();
        jittered.evaluate(&cfg).unwrap();
        assert_eq!(service.cached_entries(), 2);
        let before = service.stats();

        assert!(service.unregister(plain.fingerprint()));
        assert!(
            !service.unregister(plain.fingerprint()),
            "second unregister is a no-op"
        );
        // Only the other scenario's entry survives, and the aggregate
        // counters did not drop.
        assert_eq!(service.cached_entries(), 1);
        assert_eq!(service.scenario_stats().len(), 1);
        assert_eq!(
            service.scenario_stats()[0].fingerprint,
            jittered.fingerprint()
        );
        assert_eq!(service.stats(), before, "totals stay monotonic");

        // The purged entry recomputes: a fresh registration starts a fresh
        // statistics slice and must miss.
        let again = service.register(env());
        again.evaluate(&cfg).unwrap();
        assert_eq!(again.stats().cache_misses, 1);
        assert_eq!(again.stats().cache_hits, 0);
        assert_eq!(service.stats().requests, before.requests + 1);
    }

    #[test]
    fn stats_snapshot_reflects_the_registry() {
        let service = EvalService::with_threads(3);
        let snap = service.stats_snapshot();
        assert_eq!(snap.registered_scenarios, 0);
        assert_eq!(snap.cached_entries, 0);
        assert_eq!(snap.stats.requests, 0);

        let handle = service.register(env());
        handle.evaluate(&handle.env().base_configs()).unwrap();
        handle.evaluate(&handle.env().base_configs()).unwrap();
        let snap = service.stats_snapshot();
        assert_eq!(snap.registered_scenarios, 1);
        assert_eq!(snap.cached_entries, 1);
        assert_eq!(snap.stats.requests, 2);
        assert_eq!(snap.stats.cache_hits, 1);
        assert_eq!(snap.scenarios.len(), 1);
        assert_eq!(snap.scenarios[0].fingerprint, handle.fingerprint());
        // The snapshot serializes (the daemon's metrics payload).
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains("\"registered_scenarios\""));
        assert!(json.contains("\"inflight\""));
    }

    #[test]
    fn inflight_tracks_evaluations_and_keeps_a_peak() {
        let service = EvalService::with_threads(2);
        assert_eq!(service.inflight(), 0);
        assert_eq!(service.inflight_peak(), 0);
        let handle = service.register(env());
        handle.evaluate(&handle.env().base_configs()).unwrap();
        handle.evaluate_batch(&candidates(4)).unwrap();
        // The gauge always returns to zero after the calls complete, and
        // the high-water mark remembers that something ran.
        assert_eq!(service.inflight(), 0);
        assert!(service.inflight_peak() >= 1);
        assert_eq!(service.stats_snapshot().inflight, 0);
        assert!(service.stats_snapshot().inflight_peak >= 1);
    }

    #[test]
    fn concurrent_register_evaluate_unregister_is_safe() {
        // Exercise the runtime scenario lifecycle under concurrency: one
        // scenario is hammered with evaluations while another is
        // repeatedly registered, evaluated and unregistered. Nothing may
        // deadlock, leak entries across fingerprints, or corrupt results.
        let service = EvalService::with_threads(2);
        let stable = service.register(env());
        let cfgs = candidates(8);
        let reference = stable.evaluate_batch(&cfgs).unwrap();
        std::thread::scope(|scope| {
            let service = &service;
            let stable = &stable;
            let cfgs = &cfgs;
            let reference = &reference;
            for _ in 0..3 {
                scope.spawn(move || {
                    for _ in 0..20 {
                        let got = stable.evaluate_batch(cfgs).unwrap();
                        assert_eq!(&got, reference);
                    }
                });
            }
            scope.spawn(move || {
                for _ in 0..20 {
                    let churn = service.register(jittery_env());
                    churn.evaluate(&churn.env().base_configs()).unwrap();
                    service.unregister(churn.fingerprint());
                }
            });
        });
        // The churned scenario is gone; the stable one still answers from
        // its (untouched) cache entries.
        let slices = service.scenario_stats();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].fingerprint, stable.fingerprint());
        let hits_before = stable.stats().cache_hits;
        assert_eq!(stable.evaluate_batch(&cfgs).unwrap(), reference);
        assert_eq!(stable.stats().cache_hits, hits_before + cfgs.len() as u64);
    }

    #[test]
    fn interleaved_submissions_keep_per_scenario_results_stable() {
        // Alternating submissions from two scenarios must produce the same
        // per-scenario results and statistics as running each alone.
        let cfgs = candidates(12);
        let shared = EvalService::with_threads(3);
        let h1 = shared.register(env());
        let h2 = shared.register(jittery_env());
        let mut inter1 = Vec::new();
        let mut inter2 = Vec::new();
        for chunk in cfgs.chunks(3) {
            inter1.extend(h1.evaluate_batch(chunk).unwrap());
            inter2.extend(h2.evaluate_batch(chunk).unwrap());
        }

        let solo1 = EvalEngine::with_threads(env(), 3);
        let solo2 = EvalEngine::with_threads(jittery_env(), 3);
        let mut alone1 = Vec::new();
        let mut alone2 = Vec::new();
        for chunk in cfgs.chunks(3) {
            alone1.extend(solo1.evaluate_batch(chunk).unwrap());
            alone2.extend(solo2.evaluate_batch(chunk).unwrap());
        }
        assert_eq!(inter1, alone1);
        assert_eq!(inter2, alone2);
        assert_eq!(h1.stats().cache_hits, solo1.stats().cache_hits);
        assert_eq!(h2.stats().cache_misses, solo2.stats().cache_misses);
    }

    #[test]
    fn attached_telemetry_records_batches_without_changing_results() {
        let cfgs = candidates(10);

        let plain = EvalService::with_threads(2);
        let baseline = plain.register(env()).evaluate_batch(&cfgs).unwrap();

        let recorder = Recorder::new();
        let flight = Arc::new(FlightRecorder::new(64));
        let instrumented = EvalService::with_threads(2);
        instrumented
            .attach_telemetry(EvalTelemetry::new(&recorder, Arc::clone(&flight)))
            .expect("first attach succeeds");
        // A second attachment is rejected (first wins).
        assert!(instrumented
            .attach_telemetry(EvalTelemetry::new(&recorder, Arc::clone(&flight)))
            .is_err());

        let handle = instrumented.register(env());
        let observed = handle.evaluate_batch(&cfgs).unwrap();
        assert_eq!(observed, baseline, "telemetry must not perturb results");
        handle.evaluate(&cfgs[0]).unwrap();

        let snap = recorder.snapshot();
        let histogram = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _, _)| n == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
                .2
                .clone()
        };
        assert_eq!(histogram("aarc_eval_batch_seconds").count(), 1);
        assert_eq!(histogram("aarc_eval_sim_seconds").count(), 1);
        assert_eq!(histogram("aarc_eval_queue_wait_seconds").count(), 1);
        assert_eq!(histogram("aarc_eval_probe_seconds").count(), 1);
        // queue + sim never exceed the total batch time.
        assert!(
            histogram("aarc_eval_queue_wait_seconds").sum_ns
                + histogram("aarc_eval_sim_seconds").sum_ns
                <= histogram("aarc_eval_batch_seconds").sum_ns
        );

        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .2
        };
        // 10 batch candidates (distinct) + 1 probe (cache hit, no sim).
        assert_eq!(counter("aarc_kernel_simulations_total"), 10);
        // Two functions per workflow, started once per simulation.
        assert_eq!(counter("aarc_kernel_function_starts_total"), 20);
        assert_eq!(counter("aarc_kernel_oom_kills_total"), 0);

        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _, _)| n == "aarc_sims_per_sec")
            .expect("sims/sec gauge registered");
        assert!(gauge.2 > 0.0);

        let events = flight.tail(usize::MAX);
        assert_eq!(events.len(), 1, "one eval_batch event, probes are silent");
        assert_eq!(events[0].kind, "eval_batch");
        let field = |name: &str| {
            events[0]
                .fields
                .iter()
                .find(|(k, _)| *k == name)
                .unwrap_or_else(|| panic!("missing field {name}"))
                .1
                .clone()
        };
        assert_eq!(field("candidates"), FieldValue::U64(10));
        assert_eq!(field("hits"), FieldValue::U64(0));
        assert_eq!(field("misses"), FieldValue::U64(10));
        assert_eq!(
            field("fingerprint"),
            FieldValue::Str(format!("{:016x}", handle.fingerprint()))
        );
    }

    #[test]
    fn kernel_counters_accumulate_and_drain() {
        let e = env();
        let scenario =
            CompiledScenario::compile(e.workflow(), e.profiles(), *e.cluster(), *e.pricing())
                .unwrap();
        let mut scratch = SimScratch::new();
        let cfg = e.base_configs();
        scenario
            .simulate(&mut scratch, &cfg, InputSpec::default(), 0)
            .unwrap();
        scenario
            .simulate(&mut scratch, &cfg, InputSpec::default(), 0)
            .unwrap();
        // Counters survive the per-run reset and accumulate across runs.
        let counters = scratch.counters();
        assert_eq!(counters.sims, 2);
        assert_eq!(counters.node_starts, 4);
        assert_eq!(counters.oom_kills, 0);
        // Draining returns the total and zeroes the arena's counters.
        assert_eq!(scratch.take_counters(), counters);
        assert_eq!(scratch.counters(), crate::kernel::KernelCounters::default());

        let mut merged = crate::kernel::KernelCounters::default();
        merged.merge(&counters);
        merged.merge(&counters);
        assert_eq!(merged.sims, 4);
        assert_eq!(merged.node_starts, 8);
    }
}
