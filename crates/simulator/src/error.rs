//! Error types of the simulator.

use std::error::Error;
use std::fmt;

use aarc_workflow::{NodeId, WorkflowError};

/// Errors produced while configuring or executing a simulated workflow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulatorError {
    /// A function in the workflow has no performance profile.
    MissingProfile {
        /// The function without a profile.
        node: NodeId,
        /// Its name, if known.
        name: String,
    },
    /// A function in the workflow has no resource configuration.
    MissingConfig {
        /// The function without a configuration.
        node: NodeId,
    },
    /// The configuration map does not cover every workflow function (its
    /// length differs from the workflow's node count).
    ConfigCountMismatch {
        /// Number of functions in the workflow.
        expected: usize,
        /// Number of configurations actually provided.
        got: usize,
    },
    /// A resource configuration is outside the platform's allowed space.
    InvalidConfig {
        /// The offending function.
        node: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// The underlying workflow was malformed.
    Workflow(WorkflowError),
    /// The cluster cannot ever fit a requested allocation (it exceeds the
    /// capacity of every host).
    Unplaceable {
        /// The offending function.
        node: NodeId,
    },
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::MissingProfile { node, name } => {
                write!(f, "function {node} (`{name}`) has no performance profile")
            }
            SimulatorError::MissingConfig { node } => {
                write!(f, "function {node} has no resource configuration")
            }
            SimulatorError::ConfigCountMismatch { expected, got } => {
                write!(
                    f,
                    "configuration map covers {got} function(s) but the workflow has {expected}"
                )
            }
            SimulatorError::InvalidConfig { node, reason } => {
                write!(f, "invalid configuration for function {node}: {reason}")
            }
            SimulatorError::Workflow(e) => write!(f, "workflow error: {e}"),
            SimulatorError::Unplaceable { node } => write!(
                f,
                "function {node} requests more resources than any cluster host provides"
            ),
        }
    }
}

impl Error for SimulatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulatorError::Workflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkflowError> for SimulatorError {
    fn from(e: WorkflowError) -> Self {
        SimulatorError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases = vec![
            SimulatorError::MissingProfile {
                node: NodeId::new(1),
                name: "f".into(),
            },
            SimulatorError::MissingConfig {
                node: NodeId::new(2),
            },
            SimulatorError::ConfigCountMismatch {
                expected: 4,
                got: 2,
            },
            SimulatorError::InvalidConfig {
                node: NodeId::new(3),
                reason: "memory below 128 MB".into(),
            },
            SimulatorError::Workflow(WorkflowError::Empty),
            SimulatorError::Unplaceable {
                node: NodeId::new(4),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn from_workflow_error_preserves_source() {
        let err: SimulatorError = WorkflowError::Empty.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulatorError>();
    }
}
