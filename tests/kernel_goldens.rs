//! Pre-refactor goldens for the zero-allocation kernel: the three paper
//! workloads, compiled from their committed specs, must keep producing the
//! exact observables the pre-kernel executor produced at the pinned default
//! seeds — through the lean `SimResult` path, the materialised
//! `ExecutionReport` path, and the Graph-Centric Scheduler's full search.
//!
//! The numbers below were captured from the executor as it stood before the
//! kernel rewrite (PR 3) and are asserted with exact `f64` equality: the
//! kernel is required to be bit-identical, not merely close.

use std::path::PathBuf;

use aarc_core::{ConfigurationSearch, GraphCentricScheduler};
use aarc_simulator::EvalEngine;

fn workload(name: &str) -> aarc_workloads::Workload {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("specs")
        .join(format!("{name}.yaml"));
    let spec = aarc_spec::load(&path).expect("committed spec loads");
    aarc_spec::compile(&spec)
        .expect("spec compiles")
        .into_workload()
}

/// `(spec file, base-config makespan ms, base-config total cost)`.
const BASE_GOLDENS: [(&str, f64, f64); 3] = [
    ("chatbot", 88018.0, 1789440.0),
    ("ml_pipeline", 54728.667, 974848.0),
    ("video_analysis", 160452.0, 2457600.0),
];

/// `(spec file, AARC final cost, AARC final makespan ms)`.
const SEARCH_GOLDENS: [(&str, f64, f64); 3] = [
    ("chatbot", 158574.93333333335, 104184.66666666667),
    ("ml_pipeline", 205722.69714285716, 93347.71366666668),
    ("video_analysis", 1481786.1818181819, 161361.091),
];

#[test]
fn base_config_executions_match_pre_refactor_goldens() {
    for (name, makespan_ms, total_cost) in BASE_GOLDENS {
        let wl = workload(name);
        let engine = EvalEngine::single_threaded(wl.env().clone());
        let result = engine.evaluate(&wl.env().base_configs()).unwrap();
        assert_eq!(
            result.makespan_ms(),
            makespan_ms,
            "{name}: base makespan drifted (got {:?})",
            result.makespan_ms()
        );
        assert_eq!(
            result.total_cost(),
            total_cost,
            "{name}: base cost drifted (got {:?})",
            result.total_cost()
        );
        assert!(!result.any_oom(), "{name}: base config must not OOM");
        // The materialised report agrees bit for bit.
        let report = engine
            .materialize_result(&wl.env().base_configs(), &result)
            .unwrap();
        assert_eq!(
            report.makespan_ms().to_bits(),
            result.makespan_ms().to_bits()
        );
        assert_eq!(report.total_cost().to_bits(), result.total_cost().to_bits());
    }
}

#[test]
fn aarc_search_matches_pre_refactor_goldens() {
    for (name, final_cost, final_makespan_ms) in SEARCH_GOLDENS {
        let wl = workload(name);
        let engine = EvalEngine::single_threaded(wl.env().clone());
        let outcome = GraphCentricScheduler::default()
            .search_with(&engine, wl.slo_ms())
            .unwrap();
        assert_eq!(
            outcome.best_cost(),
            final_cost,
            "{name}: AARC final cost drifted (got {:?})",
            outcome.best_cost()
        );
        assert_eq!(
            outcome.best_runtime_ms(),
            final_makespan_ms,
            "{name}: AARC final makespan drifted (got {:?})",
            outcome.best_runtime_ms()
        );
    }
}
