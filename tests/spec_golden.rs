//! Golden-file tests: the specs exported for the three built-in paper
//! workloads must stay byte-identical to the files committed under
//! `specs/`. A diff here means either the workload definitions or the
//! export/serialization path changed — both must be deliberate; regenerate
//! with `cargo run -p aarc-cli -- export-builtin --dir specs`.

use std::path::PathBuf;

use aarc_spec::{builtin_specs, to_string, SpecFormat};

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("specs")
}

#[test]
fn exported_builtin_specs_match_the_golden_files() {
    for (name, spec) in builtin_specs() {
        let path = specs_dir().join(format!("{name}.yaml"));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
        let exported = to_string(&spec, SpecFormat::Yaml);
        assert_eq!(
            exported,
            golden,
            "{name}: exported spec drifted from {} — if intentional, regenerate with \
             `cargo run -p aarc-cli -- export-builtin --dir specs`",
            path.display()
        );
    }
}

#[test]
fn golden_files_parse_validate_and_recompile() {
    for name in aarc_spec::BUILTIN_NAMES {
        let path = specs_dir().join(format!("{name}.yaml"));
        let spec = aarc_spec::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        aarc_spec::validate(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let scenario = aarc_spec::compile(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        // The compiled workload behaves like the Rust-defined original.
        let rebuilt = scenario.workload();
        let report = rebuilt
            .env()
            .execute(&rebuilt.env().base_configs())
            .expect("base config executes");
        assert!(
            report.meets_slo(rebuilt.slo_ms()),
            "{name} violates its own SLO"
        );
    }
}

#[test]
fn committed_synthetic_specs_validate_and_compile() {
    let mut synthetic = 0usize;
    for entry in std::fs::read_dir(specs_dir()).expect("specs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("yaml") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap();
        if !stem.starts_with("synthetic") {
            continue;
        }
        synthetic += 1;
        let spec = aarc_spec::load(&path).unwrap_or_else(|e| panic!("{stem}: {e}"));
        aarc_spec::compile(&spec).unwrap_or_else(|e| panic!("{stem}: {e}"));
    }
    assert!(
        synthetic >= 2,
        "expected at least two synthetic scenarios in specs/, found {synthetic}"
    );
}

#[test]
fn builtin_exports_match_their_rust_twins_behaviourally() {
    use aarc::workloads::{chatbot, ml_pipeline, video_analysis};
    let twins = [chatbot(), ml_pipeline(), video_analysis()];
    for ((name, spec), original) in builtin_specs().into_iter().zip(twins) {
        let rebuilt = aarc_spec::compile(&spec).unwrap().into_workload();
        let base_a = original
            .env()
            .execute(&original.env().base_configs())
            .unwrap();
        let base_b = rebuilt
            .env()
            .execute(&rebuilt.env().base_configs())
            .unwrap();
        assert_eq!(base_a.makespan_ms(), base_b.makespan_ms(), "{name}");
        assert_eq!(base_a.total_cost(), base_b.total_cost(), "{name}");
        assert_eq!(original.slo_ms(), rebuilt.slo_ms(), "{name}");
        assert_eq!(
            original.input_classes().len(),
            rebuilt.input_classes().len(),
            "{name}"
        );
    }
}
