//! Property tests of the scenario subsystem's central contract: for any
//! normalized spec, `compile` then `export` is the identity, and both text
//! formats (YAML and JSON) round-trip the spec losslessly — including
//! float-exact profile values and names that need YAML quoting.

use aarc_spec::{
    compile, export, from_json_str, from_yaml_str, to_string, validate, AffinityDecl, ClassDecl,
    ClusterDecl, ColdStartDecl, ConfigDecl, EdgeDecl, FunctionDecl, InputClassDecl, InputDecl,
    KindDecl, PricingDecl, ProfileDecl, ScenarioSpec, SpaceDecl, SpecFormat, SPEC_VERSION,
};
use proptest::prelude::*;

const AFFINITIES: [AffinityDecl; 4] = [
    AffinityDecl::CpuBound,
    AffinityDecl::MemoryBound,
    AffinityDecl::IoBound,
    AffinityDecl::Balanced,
];
const KINDS: [KindDecl; 4] = [
    KindDecl::Direct,
    KindDecl::Scatter,
    KindDecl::Broadcast,
    KindDecl::Gather,
];
const CLASSES: [ClassDecl; 3] = [ClassDecl::Light, ClassDecl::Middle, ClassDecl::Heavy];

fn arb_profile() -> impl Strategy<Value = ProfileDecl> {
    (
        (
            0.0f64..20_000.0,
            0.0f64..60_000.0,
            1.0f64..8.0,
            0.0f64..2_000.0,
        ),
        (
            128.0f64..4_096.0,
            0.0f64..1.0,
            1.0f64..6.0,
            0.0f64..2.0,
            0.0f64..1.0,
        ),
    )
        .prop_map(
            |((serial, parallel, par, io), (ws, floor_frac, penalty, sens, mem_sens))| {
                ProfileDecl {
                    serial_ms: serial,
                    parallel_ms: parallel,
                    max_parallelism: Some(par),
                    io_ms: io,
                    working_set_mb: Some(ws),
                    mem_floor_mb: Some(ws * floor_frac),
                    mem_penalty_factor: Some(penalty),
                    input_sensitivity: Some(sens),
                    mem_input_sensitivity: mem_sens,
                }
            },
        )
}

/// A normalized spec: every optional section explicit, exactly what the
/// exporter emits — the domain on which `export ∘ compile` must be the
/// identity.
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let functions = (2usize..7).prop_flat_map(|n| {
        proptest::collection::vec((arb_profile(), 0usize..4), n).prop_map(|profiles| {
            profiles
                .into_iter()
                .enumerate()
                .map(|(i, (profile, aff))| FunctionDecl {
                    // Exercise YAML quoting: every third name needs quotes.
                    name: if i % 3 == 2 {
                        format!("fn {i}: tricky #name")
                    } else {
                        format!("fn_{i}")
                    },
                    affinity: AFFINITIES[aff],
                    profile,
                })
                .collect::<Vec<_>>()
        })
    });
    (
        functions,
        proptest::collection::vec((0usize..6, 0usize..6, 0.0f64..64.0, 0usize..4), 0..12),
        (1_000.0f64..600_000.0, 0u64..u64::MAX),
        (
            (1usize..4, 16.0f64..128.0, 65_536u32..524_288),
            (100.0f64..2_000.0, 0.0f64..0.5),
        ),
        (0.0f64..1.0, 0.0f64..0.01, 0.0f64..10.0),
        ((0.1f64..2.0, 128u32..2_048), (0.1f64..3.0, 1.0f64..128.0)),
        proptest::collection::vec((0usize..3, 0.1f64..3.0, 1.0f64..256.0, 0.1f64..5.0), 0..4),
    )
        .prop_map(
            |(
                functions,
                raw_edges,
                (slo_ms, seed),
                ((hosts, vcpus, mem), (network, jitter)),
                (per_vcpu, per_mb, per_request),
                ((base_vcpu, base_mem), (in_scale, in_payload)),
                raw_classes,
            )| {
                let n = functions.len();
                let mut seen = std::collections::HashSet::new();
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b, payload, kind)| {
                        let (a, b) = (a % n, b % n);
                        if a < b && seen.insert((a, b)) {
                            Some(EdgeDecl {
                                from: functions[a].name.clone(),
                                to: functions[b].name.clone(),
                                payload_mb: Some(payload),
                                kind: KINDS[kind],
                            })
                        } else {
                            None
                        }
                    })
                    .collect();
                let mut class_seen = std::collections::HashSet::new();
                let input_classes = raw_classes
                    .into_iter()
                    .filter_map(|(c, scale, payload, weight)| {
                        let class = CLASSES[c];
                        class_seen.insert(class).then_some(InputClassDecl {
                            class,
                            input: InputDecl {
                                scale,
                                payload_mb: payload,
                            },
                            weight: Some(weight),
                        })
                    })
                    .collect();
                ScenarioSpec {
                    version: SPEC_VERSION,
                    name: "prop scenario: quoted #name".to_string(),
                    slo_ms,
                    seed,
                    functions,
                    edges,
                    cluster: Some(ClusterDecl {
                        hosts,
                        vcpus_per_host: vcpus,
                        memory_mb_per_host: mem,
                        network_mb_per_s: network,
                        runtime_jitter: jitter,
                        cold_start: Some(ColdStartDecl {
                            enabled: jitter > 0.25,
                            base_ms: 250.0,
                            per_gb_ms: 50.0,
                        }),
                    }),
                    pricing: Some(PricingDecl {
                        per_vcpu_ms: per_vcpu,
                        per_mb_ms: per_mb,
                        per_request,
                    }),
                    resource_space: Some(SpaceDecl {
                        min_vcpu: 0.1,
                        max_vcpu: 10.0,
                        vcpu_step: 0.1,
                        min_memory_mb: 128,
                        max_memory_mb: 10_240,
                        memory_step_mb: 64,
                    }),
                    base_config: Some(ConfigDecl {
                        vcpu: base_vcpu,
                        memory_mb: base_mem,
                    }),
                    input: Some(InputDecl {
                        scale: in_scale,
                        payload_mb: in_payload,
                    }),
                    input_classes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// YAML text round-trips any normalized spec exactly.
    #[test]
    fn yaml_round_trip_is_lossless(spec in arb_spec()) {
        let text = to_string(&spec, SpecFormat::Yaml);
        let back = from_yaml_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(back, spec);
    }

    /// JSON text round-trips any normalized spec exactly.
    #[test]
    fn json_round_trip_is_lossless(spec in arb_spec()) {
        let text = to_string(&spec, SpecFormat::Json);
        let back = from_json_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(back, spec);
    }

    /// `export(compile(spec))` is the identity on normalized specs, and the
    /// exported YAML reparses to the same spec (the ISSUE's
    /// spec → compile → export → reparse chain).
    #[test]
    fn compile_export_reparse_is_identity(spec in arb_spec()) {
        validate(&spec).expect("generated specs are valid");
        let scenario = compile(&spec).expect("generated specs compile");
        let exported = export(&scenario);
        prop_assert_eq!(&exported, &spec, "compile/export changed the spec");
        let text = to_string(&exported, SpecFormat::Yaml);
        let reparsed = from_yaml_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(reparsed, spec);
    }

    /// Compiled scenarios actually execute and respect the declared shape.
    #[test]
    fn compiled_scenarios_execute(spec in arb_spec()) {
        let scenario = compile(&spec).expect("generated specs compile");
        let wl = scenario.workload();
        prop_assert_eq!(wl.len(), spec.functions.len());
        prop_assert_eq!(wl.env().workflow().edges().len(), spec.edges.len());
        let report = wl.env().execute(&wl.env().base_configs()).expect("base executes");
        prop_assert!(report.makespan_ms() > 0.0);
        prop_assert!(report.total_cost() >= 0.0);
    }
}
