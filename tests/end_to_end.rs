//! Integration tests spanning all crates: the full AARC pipeline and both
//! baselines on the paper workloads, asserting the headline orderings of the
//! paper's evaluation.

use aarc::prelude::*;
use aarc::workloads::{chatbot, ml_pipeline, paper_workloads, video_analysis};

fn aarc_scheduler() -> GraphCentricScheduler {
    GraphCentricScheduler::new(AarcParams::paper())
}

#[test]
fn aarc_meets_the_slo_on_every_paper_workload() {
    let scheduler = aarc_scheduler();
    for workload in paper_workloads() {
        let outcome = scheduler
            .search(workload.env(), workload.slo_ms())
            .expect("AARC search succeeds");
        assert!(
            outcome.final_report.meets_slo(workload.slo_ms()),
            "{}: {} ms exceeds the SLO of {} ms",
            workload.name(),
            outcome.final_report.makespan_ms(),
            workload.slo_ms()
        );
        assert!(!outcome.final_report.any_oom());
    }
}

#[test]
fn aarc_reduces_cost_substantially_versus_the_base_configuration() {
    let scheduler = aarc_scheduler();
    for workload in paper_workloads() {
        let env = workload.env();
        let base_cost = env
            .execute(&env.base_configs())
            .expect("base executes")
            .total_cost();
        let outcome = scheduler
            .search(env, workload.slo_ms())
            .expect("AARC search succeeds");
        assert!(
            outcome.final_report.total_cost() < 0.7 * base_cost,
            "{}: expected at least 30% savings, got {} vs base {}",
            workload.name(),
            outcome.final_report.total_cost(),
            base_cost
        );
    }
}

#[test]
fn aarc_configurations_are_cheaper_than_both_baselines_on_all_workloads() {
    // The Table II headline: AARC's found configuration costs less than the
    // configurations found by BO and MAFF, while all methods meet the SLO.
    let methods: Vec<Box<dyn ConfigurationSearch>> = vec![
        Box::new(aarc_scheduler()),
        Box::new(BayesianOptimization::new(BoParams::default())),
        Box::new(MaffGradientDescent::new(MaffParams::default())),
    ];
    for workload in paper_workloads() {
        let mut costs = Vec::new();
        for method in &methods {
            let outcome = method
                .search(workload.env(), workload.slo_ms())
                .expect("search succeeds");
            assert!(
                outcome.final_report.meets_slo(workload.slo_ms()),
                "{} violates the SLO on {}",
                method.name(),
                workload.name()
            );
            costs.push((method.name().to_owned(), outcome.final_report.total_cost()));
        }
        let aarc_cost = costs[0].1;
        for (name, cost) in &costs[1..] {
            assert!(
                aarc_cost < *cost,
                "{}: AARC ({aarc_cost:.1}) should undercut {name} ({cost:.1})",
                workload.name()
            );
        }
    }
}

#[test]
fn aarc_search_is_cheaper_and_faster_than_bo_on_the_heavy_workload() {
    // The Fig. 5 headline is strongest on Video Analysis: AARC needs far
    // less total sampling runtime and cost than workflow-level BO.
    let workload = video_analysis();
    let aarc = aarc_scheduler()
        .search(workload.env(), workload.slo_ms())
        .expect("AARC succeeds");
    let bo = BayesianOptimization::new(BoParams::default())
        .search(workload.env(), workload.slo_ms())
        .expect("BO succeeds");
    assert!(
        aarc.trace.total_runtime_ms() < 0.6 * bo.trace.total_runtime_ms(),
        "AARC search runtime {} should be well below BO's {}",
        aarc.trace.total_runtime_ms(),
        bo.trace.total_runtime_ms()
    );
    assert!(aarc.trace.total_cost() < 0.7 * bo.trace.total_cost());
}

#[test]
fn maff_gets_stuck_in_a_coupled_local_optimum_on_the_cpu_bound_workload() {
    // The paper's explanation for Fig. 7b: the ML Pipeline needs many cores
    // but little memory, which a coupled search cannot express.
    let workload = ml_pipeline();
    let aarc = aarc_scheduler()
        .search(workload.env(), workload.slo_ms())
        .expect("AARC succeeds");
    let maff = MaffGradientDescent::new(MaffParams::default())
        .search(workload.env(), workload.slo_ms())
        .expect("MAFF succeeds");
    assert!(
        aarc.final_report.total_cost() < 0.7 * maff.final_report.total_cost(),
        "AARC ({}) should save well over 30% against MAFF ({}) on the ML Pipeline",
        aarc.final_report.total_cost(),
        maff.final_report.total_cost()
    );
}

#[test]
fn aarc_uses_a_modest_number_of_samples() {
    // Sample counts reported in §IV-B are a few dozen per workflow.
    let scheduler = aarc_scheduler();
    for workload in paper_workloads() {
        let outcome = scheduler
            .search(workload.env(), workload.slo_ms())
            .expect("AARC succeeds");
        let samples = outcome.trace.sample_count();
        assert!(
            (10..=160).contains(&samples),
            "{}: unexpected sample count {}",
            workload.name(),
            samples
        );
    }
}

#[test]
fn found_configurations_are_decoupled_not_memory_proportional() {
    // The core premise: AARC's configurations are genuinely decoupled — at
    // least one function gets a CPU:memory ratio far away from the 1 core /
    // 1024 MB coupling.
    let workload = chatbot();
    let outcome = aarc_scheduler()
        .search(workload.env(), workload.slo_ms())
        .expect("AARC succeeds");
    let decoupled = outcome.best_configs.iter().any(|(_, cfg)| {
        let coupled_cpu = f64::from(cfg.memory.get()) / 1_024.0;
        (cfg.vcpu.get() - coupled_cpu).abs() > 0.5
    });
    assert!(
        decoupled,
        "expected at least one clearly decoupled allocation"
    );
}

#[test]
fn input_aware_engine_protects_the_slo_across_input_classes() {
    let workload = video_analysis();
    let scheduler = GraphCentricScheduler::new(AarcParams::fast());
    let engine = InputAwareEngine::build(
        &scheduler,
        workload.env(),
        workload.slo_ms(),
        workload.input_classes(),
    )
    .expect("engine builds");
    for (&class, &input) in workload.input_classes() {
        let report = engine.serve(workload.env(), input).expect("request served");
        assert!(
            report.meets_slo(workload.slo_ms()),
            "class {class} violates the SLO"
        );
    }
}
