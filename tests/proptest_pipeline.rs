//! Property-based tests of the full pipeline on randomly generated
//! workloads: whatever the workflow shape and profiles, AARC must stay
//! within the SLO, never exceed the base cost, and produce configurations
//! inside the platform's resource space.

use aarc::prelude::*;
use aarc::workloads::{RandomWorkloadConfig, RandomWorkloadGenerator};
use proptest::prelude::*;

fn workload_from_seed(seed: u64, layers: usize, width: usize) -> Workload {
    let config = RandomWorkloadConfig {
        layers,
        max_width: width,
        ..RandomWorkloadConfig::default()
    };
    RandomWorkloadGenerator::new(config, seed).generate()
}

proptest! {
    // Each case runs a full configuration search, so keep the count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// AARC never returns an SLO-violating or OOM configuration when the
    /// base configuration is feasible, and never costs more than the base.
    #[test]
    fn aarc_is_safe_on_random_workloads(seed in 0u64..10_000, layers in 2usize..5, width in 1usize..4) {
        let workload = workload_from_seed(seed, layers, width);
        let env = workload.env();
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let outcome = scheduler
            .search(env, workload.slo_ms())
            .expect("base configuration is feasible by construction");
        prop_assert!(outcome.final_report.meets_slo(workload.slo_ms()));
        prop_assert!(!outcome.final_report.any_oom());

        let base_cost = env.execute(&env.base_configs()).expect("base executes").total_cost();
        prop_assert!(outcome.final_report.total_cost() <= base_cost * 1.0001);

        // Every configuration is inside the platform's resource space.
        for (_, cfg) in outcome.best_configs.iter() {
            prop_assert!(env.space().contains(cfg), "{cfg} outside the space");
        }
        // One configuration per function.
        prop_assert_eq!(outcome.best_configs.len(), env.workflow().len());
    }

    /// The sample trace is consistent: indices are 1..=n and totals equal
    /// the series sums.
    #[test]
    fn search_traces_are_consistent(seed in 0u64..10_000) {
        let workload = workload_from_seed(seed, 3, 2);
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let outcome = scheduler
            .search(workload.env(), workload.slo_ms())
            .expect("search succeeds");
        let trace = &outcome.trace;
        for (i, sample) in trace.samples().iter().enumerate() {
            prop_assert_eq!(sample.index, i + 1);
        }
        let runtime_sum: f64 = trace.runtime_series().iter().sum();
        prop_assert!((runtime_sum - trace.total_runtime_ms()).abs() < 1e-6);
        let cost_sum: f64 = trace.cost_series().iter().sum();
        prop_assert!((cost_sum - trace.total_cost()).abs() < 1e-6);
    }

    /// MAFF always returns coupled configurations and never violates the
    /// SLO.
    #[test]
    fn maff_stays_coupled_and_safe(seed in 0u64..10_000) {
        let workload = workload_from_seed(seed, 3, 2);
        let maff = MaffGradientDescent::new(MaffParams::default());
        let outcome = maff
            .search(workload.env(), workload.slo_ms())
            .expect("maff search succeeds");
        prop_assert!(outcome.final_report.meets_slo(workload.slo_ms()));
        let space = workload.env().space();
        for (_, cfg) in outcome.best_configs.iter() {
            let coupled = space.snap_vcpu(f64::from(cfg.memory.get()) / 1_024.0);
            prop_assert!((cfg.vcpu.get() - coupled).abs() < 1e-9, "config {cfg} is not coupled");
        }
    }
}
