//! Cross-crate integration tests of the baseline methods' characteristic
//! behaviours — the properties the paper's discussion attributes to each
//! method.

use aarc::baselines::{RandomSearch, RandomSearchParams};
use aarc::prelude::*;
use aarc::workloads::{chatbot, ml_pipeline, video_analysis};
use aarc_simulator::metrics::fluctuation_amplitude;

#[test]
fn bo_cost_series_is_unstable_while_aarc_trends_downwards() {
    // §II-B / Fig. 7: BO's sampled cost fluctuates heavily; AARC's accepted
    // samples decrease monotonically, so its overall series is far smoother.
    let workload = chatbot();
    let bo = BayesianOptimization::new(BoParams::default())
        .search(workload.env(), workload.slo_ms())
        .expect("bo search succeeds");
    let aarc = GraphCentricScheduler::new(AarcParams::paper())
        .search(workload.env(), workload.slo_ms())
        .expect("aarc search succeeds");

    let bo_fluct = fluctuation_amplitude(&bo.trace.cost_series());
    let aarc_fluct = fluctuation_amplitude(&aarc.trace.cost_series());
    assert!(
        bo_fluct > aarc_fluct,
        "BO ({bo_fluct:.3}) should fluctuate more than AARC ({aarc_fluct:.3})"
    );

    // AARC's best-so-far cost curve is non-increasing by construction.
    let best = aarc.trace.best_cost_series(workload.slo_ms());
    for pair in best.windows(2) {
        assert!(pair[1] <= pair[0] + 1e-9);
    }
}

#[test]
fn bo_needs_many_more_samples_than_the_workflow_has_functions() {
    // The decoupled workflow space has 2·n dimensions; BO's sample count is
    // a fixed budget far above AARC's per-path queue drain.
    let workload = ml_pipeline();
    let bo = BayesianOptimization::new(BoParams::default())
        .search(workload.env(), workload.slo_ms())
        .expect("bo search succeeds");
    assert_eq!(bo.trace.sample_count(), BoParams::default().iterations);
}

#[test]
fn maff_terminates_quickly_after_its_first_slo_violation() {
    // The paper's MAFF adaptation reverts and terminates on the first SLO
    // violation, which is why its sample counts are the lowest.
    let workload = ml_pipeline();
    let maff = MaffGradientDescent::new(MaffParams::default())
        .search(workload.env(), workload.slo_ms())
        .expect("maff search succeeds");
    let samples = maff.trace.sample_count();
    assert!(
        samples < 80,
        "MAFF should stop early on the CPU-bound workflow, used {samples} samples"
    );
    // At most one violating sample can appear in the trace (the terminating
    // one).
    let violating = maff
        .trace
        .samples()
        .iter()
        .filter(|s| s.makespan_ms > workload.slo_ms() || s.oom)
        .count();
    assert!(
        violating <= 1,
        "found {violating} violating samples in a MAFF trace"
    );
}

#[test]
fn random_search_is_worse_than_aarc_for_the_same_budget() {
    // Ablation control: with the same number of samples as BO, undirected
    // random search does not reach AARC's configuration quality.
    let workload = chatbot();
    let aarc = GraphCentricScheduler::new(AarcParams::paper())
        .search(workload.env(), workload.slo_ms())
        .expect("aarc search succeeds");
    let random = RandomSearch::new(RandomSearchParams {
        iterations: 70,
        seed: 11,
    })
    .search(workload.env(), workload.slo_ms())
    .expect("random search succeeds");
    assert!(random.final_report.meets_slo(workload.slo_ms()));
    assert!(
        aarc.final_report.total_cost() < random.final_report.total_cost(),
        "AARC ({}) should beat random search ({})",
        aarc.final_report.total_cost(),
        random.final_report.total_cost()
    );
}

#[test]
fn every_method_rejects_an_slo_below_the_base_runtime() {
    let workload = video_analysis();
    let impossible_slo = 1_000.0; // 1 s: far below any feasible execution.
    let methods: Vec<Box<dyn ConfigurationSearch>> = vec![
        Box::new(GraphCentricScheduler::new(AarcParams::paper())),
        Box::new(BayesianOptimization::new(BoParams::default())),
        Box::new(MaffGradientDescent::new(MaffParams::default())),
    ];
    for method in methods {
        let err = method
            .search(workload.env(), impossible_slo)
            .expect_err("an impossible SLO must be rejected");
        assert!(
            matches!(err, AarcError::BaseConfigurationViolatesSlo { .. }),
            "{}: unexpected error {err}",
            method.name()
        );
    }
}
