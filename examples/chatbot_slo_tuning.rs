//! SLO sensitivity study on the Chatbot workflow: how the configuration and
//! its cost change as the end-to-end latency SLO tightens.
//!
//! ```text
//! cargo run --release --example chatbot_slo_tuning
//! ```

use aarc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = aarc::workloads::chatbot();
    let env = workload.env();
    let scheduler = GraphCentricScheduler::new(AarcParams::paper());

    println!("Chatbot workflow: cost of the AARC configuration vs SLO");
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>12}",
        "SLO (s)", "runtime (s)", "cost", "samples", "meets SLO"
    );

    // The base configuration needs ~75 s, so SLOs below that are infeasible.
    for slo_s in [200.0, 150.0, 120.0, 100.0, 90.0] {
        let slo_ms = slo_s * 1_000.0;
        match scheduler.search(env, slo_ms) {
            Ok(outcome) => {
                println!(
                    "{:>10.0} {:>14.1} {:>14.1} {:>10} {:>12}",
                    slo_s,
                    outcome.final_report.makespan_ms() / 1_000.0,
                    outcome.final_report.total_cost(),
                    outcome.trace.sample_count(),
                    outcome.final_report.meets_slo(slo_ms)
                );
            }
            Err(e) => println!("{slo_s:>10.0} infeasible: {e}"),
        }
    }

    // An SLO tighter than the base-configuration runtime is rejected
    // up-front rather than silently violated.
    let impossible = scheduler.search(env, 30_000.0);
    println!(
        "\n30 s SLO: {}",
        match impossible {
            Err(e) => format!("rejected as expected ({e})"),
            Ok(_) => "unexpectedly accepted".to_owned(),
        }
    );
    Ok(())
}
