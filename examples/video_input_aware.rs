//! The §IV-D input-aware configuration engine on the Video Analysis
//! workflow: one configuration per input size class, dispatched per request.
//!
//! ```text
//! cargo run --release --example video_input_aware
//! ```

use aarc::prelude::*;
use aarc_workloads::inputs::request_sequence;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = aarc::workloads::video_analysis();
    let env = workload.env();
    let slo = workload.slo_ms();

    // Build the engine: the Graph-Centric Scheduler runs once per input
    // class (light / middle / heavy) with that class's representative input.
    let scheduler = GraphCentricScheduler::new(AarcParams::paper());
    let engine = InputAwareEngine::build(&scheduler, env, slo, workload.input_classes())?;
    println!(
        "engine built: {} per-class configurations, {} total search samples",
        engine.len(),
        engine.trace().sample_count()
    );
    for class in InputClass::ALL {
        if let Some(cfg) = engine.config_for(class) {
            println!(
                "  {class:>7}: {:.1} total vCPU, {} MB total memory",
                cfg.total_vcpu(),
                cfg.total_memory_mb()
            );
        }
    }

    // Serve a request mix cycling light -> middle -> heavy, as in Fig. 8.
    println!("\nserving 12 requests (light/middle/heavy round-robin):");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>10}",
        "request", "class", "runtime (s)", "cost", "SLO met"
    );
    let mut violations = 0;
    for (i, (class, input)) in request_sequence(12).into_iter().enumerate() {
        let report = engine.serve(env, input)?;
        if !report.meets_slo(slo) {
            violations += 1;
        }
        println!(
            "{:>8} {:>8} {:>14.1} {:>14.1} {:>10}",
            i,
            class.to_string(),
            report.makespan_ms() / 1_000.0,
            report.total_cost(),
            report.meets_slo(slo)
        );
    }
    println!("\nSLO violations: {violations}");

    // Contrast: a single static configuration tuned for the nominal input
    // may violate the SLO on heavy inputs (the MAFF behaviour in Fig. 8a).
    let static_outcome = scheduler.search(env, slo)?;
    let heavy = workload.input_classes()[&InputClass::Heavy];
    let static_on_heavy = env.execute_with_input(&static_outcome.best_configs, heavy)?;
    println!(
        "static (middle-tuned) configuration on a heavy input: {:.1} s, SLO met: {}",
        static_on_heavy.makespan_ms() / 1_000.0,
        static_on_heavy.meets_slo(slo)
    );
    Ok(())
}
