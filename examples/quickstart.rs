//! Quickstart: configure one of the paper's workloads with AARC and print
//! the resulting per-function configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aarc::prelude::*;
use aarc_core::ConfigurationReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload. `chatbot()` bundles the workflow DAG, per-function
    //    performance profiles, pricing and the 120 s SLO the paper uses.
    let workload = aarc::workloads::chatbot();
    let env = workload.env();
    println!(
        "workload `{}`: {} functions, SLO {:.0} s",
        workload.name(),
        workload.len(),
        workload.slo_ms() / 1_000.0
    );

    // 2. Run the Graph-Centric Scheduler (Algorithm 1 + Algorithm 2).
    let scheduler = GraphCentricScheduler::new(AarcParams::paper());
    let outcome = scheduler.search(env, workload.slo_ms())?;

    // 3. Inspect the result.
    println!(
        "search used {} samples ({:.1} s of sampled execution time)",
        outcome.trace.sample_count(),
        outcome.trace.total_runtime_ms() / 1_000.0
    );
    let report = ConfigurationReport::new(
        env,
        &outcome.best_configs,
        &outcome.final_report,
        Some(workload.slo_ms()),
    );
    println!("{report}");

    // 4. Compare against the naive over-provisioned base configuration.
    let base = env.execute(&env.base_configs())?;
    println!(
        "cost saving vs over-provisioned base: {:.1} %",
        (1.0 - outcome.final_report.total_cost() / base.total_cost()) * 100.0
    );
    Ok(())
}
