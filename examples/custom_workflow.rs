//! Bring your own workflow: build a custom DAG, describe each function's
//! performance behaviour, and let AARC find a decoupled configuration.
//!
//! The example models a small document-processing pipeline: an OCR stage
//! fans out to a CPU-hungry language-model scoring stage and a memory-hungry
//! indexing stage, which rejoin in a publishing step.
//!
//! ```text
//! cargo run --release --example custom_workflow
//! ```

use aarc::prelude::*;
use aarc_core::affinity::classify_workflow;
use aarc_core::ConfigurationReport;
use aarc_workflow::CommunicationKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The DAG.
    let mut builder = WorkflowBuilder::new("doc-pipeline");
    let ingest = builder.add_function("ingest");
    let ocr = builder.add_function("ocr");
    let score = builder.add_function("score");
    let index = builder.add_function("index");
    let publish = builder.add_function("publish");
    builder.add_edge_with(ingest, ocr, 32.0, CommunicationKind::Direct)?;
    builder.add_edge_with(ocr, score, 8.0, CommunicationKind::Scatter)?;
    builder.add_edge_with(ocr, index, 8.0, CommunicationKind::Scatter)?;
    builder.add_edge_with(score, publish, 2.0, CommunicationKind::Gather)?;
    builder.add_edge_with(index, publish, 2.0, CommunicationKind::Gather)?;
    let workflow = builder.build()?;

    // 2. Per-function performance profiles (what a profiling run would
    //    estimate on a real platform).
    let mut profiles = ProfileSet::new();
    profiles.insert(
        ingest,
        FunctionProfile::builder("ingest")
            .serial_ms(800.0)
            .io_ms(400.0)
            .build(),
    );
    profiles.insert(
        ocr,
        FunctionProfile::builder("ocr")
            .serial_ms(3_000.0)
            .parallel_ms(24_000.0)
            .max_parallelism(6.0)
            .working_set_mb(1_024.0)
            .mem_floor_mb(512.0)
            .build(),
    );
    profiles.insert(
        score,
        FunctionProfile::builder("score")
            .serial_ms(2_000.0)
            .parallel_ms(40_000.0)
            .max_parallelism(8.0)
            .working_set_mb(768.0)
            .mem_floor_mb(384.0)
            .build(),
    );
    profiles.insert(
        index,
        FunctionProfile::builder("index")
            .serial_ms(9_000.0)
            .working_set_mb(6_144.0)
            .mem_floor_mb(3_072.0)
            .mem_penalty_factor(5.0)
            .build(),
    );
    profiles.insert(
        publish,
        FunctionProfile::builder("publish")
            .serial_ms(1_200.0)
            .io_ms(600.0)
            .build(),
    );

    // 3. The environment: paper pricing, paper testbed, paper resource grid.
    let env = WorkflowEnvironment::builder(workflow, profiles).build()?;

    // 4. Affinity analysis — the "affinity-aware" part of AARC.
    println!("per-function resource affinities:");
    for report in classify_workflow(&env) {
        println!(
            "  {:<10} {:>12}   (cpu sensitivity {:.2}, mem sensitivity {:.2})",
            env.workflow().function(report.node).name(),
            report.affinity.to_string(),
            report.cpu_sensitivity,
            report.mem_sensitivity
        );
    }

    // 5. Configure against a 90 s SLO and print the result.
    let slo_ms = 90_000.0;
    let scheduler = GraphCentricScheduler::new(AarcParams::paper());
    let outcome = scheduler.search(&env, slo_ms)?;
    println!();
    println!(
        "{}",
        ConfigurationReport::new(
            &env,
            &outcome.best_configs,
            &outcome.final_report,
            Some(slo_ms)
        )
    );
    Ok(())
}
