//! Head-to-head comparison of AARC against the two baselines (Bayesian
//! optimization and MAFF) on all three paper workloads — a miniature version
//! of the paper's Figs. 5–7 and Table II.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use aarc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let methods: Vec<Box<dyn ConfigurationSearch>> = vec![
        Box::new(GraphCentricScheduler::new(AarcParams::paper())),
        Box::new(BayesianOptimization::new(BoParams::default())),
        Box::new(MaffGradientDescent::new(MaffParams::default())),
    ];

    println!(
        "{:<16} {:<6} {:>8} {:>18} {:>16} {:>14} {:>10}",
        "workload",
        "method",
        "samples",
        "search runtime (s)",
        "final cost",
        "runtime (s)",
        "SLO met"
    );
    for workload in aarc::workloads::paper_workloads() {
        for method in &methods {
            let outcome = method.search(workload.env(), workload.slo_ms())?;
            println!(
                "{:<16} {:<6} {:>8} {:>18.1} {:>16.1} {:>14.1} {:>10}",
                workload.name(),
                method.name(),
                outcome.trace.sample_count(),
                outcome.trace.total_runtime_ms() / 1_000.0,
                outcome.final_report.total_cost(),
                outcome.final_report.makespan_ms() / 1_000.0,
                outcome.final_report.meets_slo(workload.slo_ms())
            );
        }
        println!();
    }
    Ok(())
}
