//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the simulator
//! and the property tests need (statistical quality far beyond a test
//! harness's requirements is a non-goal).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator yielding raw 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the subset of `rand`'s `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift bounded sampling (Lemire); bias below 2^-64 per draw is
    // irrelevant for simulation and property testing.
    ((span as u128 * rng.next_u64() as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&j));
            let f = rng.gen_range(-0.1f64..0.1);
            assert!((-0.1..0.1).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
