//! Derive macros for the vendored `serde` shim.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the item's
//! token stream by hand and emits impls via string-built token streams. It
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (including generics and the `#[serde(skip)]`
//!   and `#[serde(default)]` field attributes),
//! * tuple structs (one-field newtypes serialize transparently, wider
//!   tuples as sequences),
//! * unit structs,
//! * enums with unit variants, struct variants and one-field tuple
//!   variants (externally tagged, like real serde).
//!
//! Derived `Deserialize` impls reject unknown map keys so typos in scenario
//! files fail loudly instead of being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Newtype,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Consumes `#[...]` attributes, returning (skip, default) flags found in
    /// any `#[serde(...)]` among them.
    fn skip_attributes(&mut self) -> (bool, bool) {
        let mut skip = false;
        let mut default = false;
        while self.is_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(first)) = inner.first() {
                        if first.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                for t in args.stream() {
                                    if let TokenTree::Ident(i) = t {
                                        match i.to_string().as_str() {
                                            "skip" | "skip_serializing" => skip = true,
                                            "default" => default = true,
                                            other => panic!(
                                                "serde_derive shim: unsupported serde attribute `{other}`"
                                            ),
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                other => panic!("serde_derive: malformed attribute, got {other:?}"),
            }
        }
        (skip, default)
    }

    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Parses `<...>` generics, returning the type parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.is_punct('<') {
            return params;
        }
        self.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expect_param = true,
                    ':' | '=' if depth == 1 => expect_param = false,
                    '\''
                        // Lifetime: consume its identifier, not a type param.
                        if depth == 1 => {
                            expect_param = false;
                        }
                    _ => {}
                },
                Some(TokenTree::Ident(i)) => {
                    if depth == 1 && expect_param {
                        params.push(i.to_string());
                        expect_param = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics"),
            }
        }
        params
    }

    /// Skips a field's type: everything up to a top-level `,` (angle-depth
    /// aware) or the end of the stream.
    fn skip_type(&mut self) {
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let (skip, default) = cur.skip_attributes();
        cur.skip_visibility();
        let name = cur.expect_ident();
        assert!(
            cur.is_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        cur.next();
        cur.skip_type();
        if cur.is_punct(',') {
            cur.next();
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cur = Cursor::new(group);
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle = 0usize;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_any = false;
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute on a tuple field: skip the bracket group.
                cur.next();
            }
            _ => saw_any = true,
        }
    }
    if saw_any {
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attributes();
        let name = cur.expect_ident();
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                assert!(
                    n == 1,
                    "serde_derive shim: only one-field tuple variants are supported (variant `{name}` has {n})"
                );
                cur.next();
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant and the trailing comma.
        while cur.peek().is_some() && !cur.is_punct(',') {
            cur.next();
        }
        if cur.is_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    let generics = cur.parse_generics();
    match keyword.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item {
                    name,
                    generics,
                    kind: ItemKind::NamedStruct(fields),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                Item {
                    name,
                    generics,
                    kind: ItemKind::TupleStruct(n),
                }
            }
            _ => Item {
                name,
                generics,
                kind: ItemKind::UnitStruct,
            },
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Item {
                    name,
                    generics,
                    kind: ItemKind::Enum(variants),
                }
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.is_empty() {
                "::serde::Value::Map(::std::vec::Vec::new())".to_string()
            } else {
                let mut s = String::from(
                    "{ let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();",
                );
                for f in live {
                    s.push_str(&format!(
                        "m.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Map(m) }");
                s
            }
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{0}::{1} => ::serde::Value::Str(::std::string::String::from(\"{1}\")),",
                        item.name, v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{0}::{1}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{1}\"), ::serde::Serialize::to_value(x0))]),",
                        item.name, v.name
                    )),
                    VariantKind::Named(fields) => {
                        let names: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{0}::{1} {{ {2} }} => {{ \
                               let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new(); \
                               {3} \
                               ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{1}\"), ::serde::Value::Map(inner))]) \
                             }},",
                            item.name,
                            v.name,
                            names.join(", "),
                            pushes
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] {header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_named_fields_reader(owner: &str, constructor: &str, fields: &[Field], src: &str) -> String {
    // `src` is an expression of type `&::serde::Value` expected to be a map.
    let known: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| format!("\"{}\"", f.name))
        .collect();
    let key_check = if known.is_empty() {
        format!(
            "for (k, _) in m {{ return ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown field `{{}}` in {owner}\", k))); }}"
        )
    } else {
        format!(
            "for (k, _) in m {{ match k.as_str() {{ {} => (), other => return ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown field `{{}}` in {owner}\", other))) }} }}",
            known.join(" | ")
        )
    };
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else if f.default {
            inits.push_str(&format!(
                "{0}: match ::serde::Value::get({src}, \"{0}\") {{ \
                   ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v).map_err(|e| e.in_field(\"{0}\"))?, \
                   ::core::option::Option::None => ::core::default::Default::default() }},",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: match ::serde::Value::get({src}, \"{0}\") {{ \
                   ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v).map_err(|e| e.in_field(\"{0}\"))?, \
                   ::core::option::Option::None => ::serde::Deserialize::from_missing(\"{owner}.{0}\")? }},",
                f.name
            ));
        }
    }
    format!(
        "{{ let m = ::serde::Value::as_map({src}).ok_or_else(|| ::serde::DeError::expected(\"map for {owner}\", {src}))?; \
           {key_check} \
           ::core::result::Result::Ok({constructor} {{ {inits} }}) }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Deserialize");
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            gen_named_fields_reader(&item.name, &item.name, fields, "value")
        }
        ItemKind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({}(::serde::Deserialize::from_value(value)?))",
            item.name
        ),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{ let items = ::serde::Value::as_seq(value).ok_or_else(|| ::serde::DeError::expected(\"sequence for {0}\", value))?; \
                   if items.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected {n} elements for {0}, got {{}}\", items.len()))); }} \
                   ::core::result::Result::Ok({0}({1})) }}",
                item.name,
                elems.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::core::result::Result::Ok({})", item.name),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{1}\" => ::core::result::Result::Ok({0}::{1}),",
                        item.name, v.name
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{1}\" => ::core::result::Result::Ok({0}::{1}(::serde::Deserialize::from_value(inner)?)),",
                        item.name, v.name
                    )),
                    VariantKind::Named(fields) => {
                        let reader = gen_named_fields_reader(
                            &format!("{}::{}", item.name, v.name),
                            &format!("{}::{}", item.name, v.name),
                            fields,
                            "inner",
                        );
                        tagged_arms
                            .push_str(&format!("\"{}\" => {reader},", v.name));
                    }
                }
            }
            format!(
                "match value {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {0}\", other))) \
                   }}, \
                   ::serde::Value::Map(m) if m.len() == 1 => {{ \
                     let (tag, inner) = &m[0]; \
                     match tag.as_str() {{ \
                       {tagged_arms} \
                       other => ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {0}\", other))) \
                     }} \
                   }}, \
                   other => ::core::result::Result::Err(::serde::DeError::expected(\"variant of {0}\", other)) \
                 }}",
                item.name
            )
        }
    };
    format!(
        "#[automatically_derived] {header} {{ \
           fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
