//! Offline drop-in subset of `criterion`.
//!
//! Provides just enough API for this workspace's benches to compile and
//! produce useful wall-clock numbers without crates.io access: benchmark
//! groups, [`BenchmarkId`], `bench_function`, `bench_with_input`,
//! [`Bencher::iter`] and the `criterion_group!`/`criterion_main!` macros.
//! There is no statistical analysis — each benchmark runs `sample_size`
//! iterations after one warm-up and reports min/mean/max.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time. Accepted for API parity; the shim
    /// always runs exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &label, &bencher.samples);
        self.criterion.ran += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id` with an input handed through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{group}/{label}: mean {mean:?} (min {min:?}, max {max:?}, n={})",
        samples.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Starts a new benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("base", f);
        self
    }
}

/// Declares a benchmark entry function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.bench_function("id", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.ran, 2);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_expand() {
        // `benches` is the generated entry function; run it.
        benches();
    }
}
