//! Offline drop-in subset of `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range strategies, tuple strategies, [`Just`],
//! [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//! [`collection::vec`], `proptest!`, `prop_assert!`, `prop_assert_eq!` and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with its case number, and because every test function derives its RNG
//! seed deterministically from its own name, failures reproduce exactly on
//! re-run. That trade keeps the shim small while preserving the regression
//! value of the property suites.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG handed to strategies while generating cases.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (FNV-1a), so each
    /// property test is deterministic but decorrelated from its siblings.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy, then
    /// draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Number-of-elements specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `cases` generated inputs through `body`. Used by the `proptest!`
/// macro; exposed for completeness.
pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: F,
) {
    let mut rng = TestRng::deterministic(name);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {}/{} of `{name}` failed (deterministic seed; re-run reproduces it)",
                case + 1,
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The macro-facing entry points, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property-test functions.
///
/// Supported grammar (the subset real proptest accepts that this workspace
/// uses): an optional `#![proptest_config(expr)]` header followed by `fn`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_cases(stringify!($name), &config, &strategy, |value| {
                let ($($pat,)+) = value;
                $body
            });
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let strat = (0usize..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::deterministic("t1");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_uses_dependent_strategy() {
        let strat = (1usize..5).prop_flat_map(|n| collection::vec(0u32..10, n));
        let mut rng = crate::TestRng::deterministic("t2");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let strat = 0u64..u64::MAX;
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, (a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10, "a={a} b={b}");
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn just_and_boxed_work(v in Just(7u32), w in (0u32..3).boxed()) {
            prop_assert_eq!(v, 7);
            prop_assert!(w < 3);
        }
    }
}
