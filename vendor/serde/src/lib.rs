//! Offline drop-in subset of `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the `Serialize`/`Deserialize` traits and derive macros the
//! workspace relies on. Instead of serde's visitor architecture it uses a
//! single self-describing [`Value`] tree as the data model; the companion
//! `serde_json` and `serde_yaml` shims convert [`Value`] to and from text.
//!
//! Design notes:
//!
//! * Maps serialize as **ordered** key/value vectors. Derived struct impls
//!   emit fields in declaration order and `HashMap`s are sorted by key, so
//!   serialized output is deterministic — which the golden-file tests of
//!   `aarc-spec` rely on.
//! * Derived `Deserialize` impls reject unknown and missing fields (except
//!   `Option` fields and fields marked `#[serde(default)]`, which fall back
//!   when absent), so schema typos in scenario files surface as errors.
//! * Floats always round-trip as floats: integral floats are rendered with
//!   a trailing `.0` by the format crates so re-parsing preserves the type.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (integer values fitting `i64` normalise to this variant).
    Int(i64),
    /// Unsigned integer above `i64::MAX` (e.g. full-range `u64` seeds).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key if this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Creates a missing-field error.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// Prefixes the message with a field context (used by derived impls to
    /// produce a path to the offending field).
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called by derived impls when a field is absent from the input map.
    /// The default rejects; `Option` accepts as `None`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError::missing`] unless overridden.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    // Only positive values can overflow i64 here.
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)
                        ))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!(
                            "integer {u} out of range for {}", stringify!($t)
                        ))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element sequence", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Map impls: keys serialize through their Value form rendered as a string,
// always emitted in sorted order for deterministic output.
// ---------------------------------------------------------------------------

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key kind: {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    // Try the integer reading first (covers NodeId-style newtype keys), then
    // fall back to the string reading.
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    } else if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(key.to_owned()))
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut m: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(k), v.to_value()))
        .collect();
    m.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(m)
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip_and_missing() {
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_missing("f").unwrap(), None);
        assert!(u32::from_missing("f").is_err());
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let v = m.to_value();
        let entries = v.as_map().unwrap();
        assert_eq!(entries[0].0, "alpha");
        assert_eq!(entries[1].0, "zeta");
        let back: HashMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_keys_round_trip() {
        let mut m = HashMap::new();
        m.insert(10u32, "x".to_string());
        m.insert(2u32, "y".to_string());
        let v = m.to_value();
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn numbers_coerce_only_toward_floats() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(u32::from_value(&Value::Float(3.0)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![("k".into(), Value::Int(1))]);
        assert_eq!(v.get("k"), Some(&Value::Int(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.kind(), "map");
        assert_eq!(Value::Null.kind(), "null");
    }
}
