//! Offline JSON reader/writer over the vendored `serde` shim's [`Value`]
//! data model.
//!
//! Emits deterministic output (map order is preserved from the `Value`
//! tree, which derived impls produce in declaration order) and renders
//! integral floats with a trailing `.0` so number types survive a
//! round-trip.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised while parsing or printing JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Emitting
// ---------------------------------------------------------------------------

/// Formats a float so that it re-parses as a float (never as an integer).
pub fn format_f64(x: f64) -> String {
    if x.is_nan() {
        // JSON has no NaN; null is the conventional stand-in.
        return "null".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "1e999" } else { "-1e999" }.to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_f64(*f)),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(item, out, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reads any deserializable value out of a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => {
                self.parse_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_bool(&mut self) -> Result<Value, Error> {
        if self.parse_keyword("true").is_ok() {
            Ok(Value::Bool(true))
        } else {
            self.parse_keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    /// Reads the four hex digits starting at `at` (without consuming them).
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a standard serializer pairs
                                // it with \uDC00-\uDFFF for non-BMP chars.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate in \\u escape"));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("invalid unicode scalar"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&parse(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Seq(vec![Value::Int(2)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let nasty = "q\"uo\\te\n\tand\u{1}control".to_string();
        let s = to_string(&nasty).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), nasty);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = "héllo → wörld 🎉".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn surrogate_pairs_decode_and_stray_surrogates_error() {
        // ASCII-escaping serializers (e.g. Python's json.dumps) emit non-BMP
        // characters as UTF-16 surrogate pairs.
        assert_eq!(from_str::<String>("\"f\\ud83d\\ude00\"").unwrap(), "f😀");
        assert_eq!(from_str::<String>("\"\\ud83c\\udf89!\"").unwrap(), "🎉!");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }
}
