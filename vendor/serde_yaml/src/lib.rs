//! Offline YAML reader/writer over the vendored `serde` shim's [`Value`]
//! data model.
//!
//! Supports the block-style subset the `aarc-spec` scenario files use:
//! nested mappings and sequences, plain and double-quoted scalars,
//! `#` comments, a leading `---` document marker and empty flow
//! collections (`[]` / `{}`), plus simple one-level flow sequences of
//! scalars. Anchors, aliases, multi-document streams and block scalars
//! (`|`/`>`) are out of scope.
//!
//! The emitter is deterministic: mappings keep the order of the `Value`
//! tree, strings are double-quoted exactly when a plain scalar would be
//! ambiguous, and integral floats are rendered with a trailing `.0` so
//! number types survive a round-trip.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised while parsing or printing YAML.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Emitting
// ---------------------------------------------------------------------------

fn format_f64(x: f64) -> String {
    if x.is_nan() {
        return ".nan".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { ".inf" } else { "-.inf" }.to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn looks_like_number(s: &str) -> bool {
    s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok()
}

fn needs_quotes(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    let first = s.chars().next().unwrap();
    if s != s.trim() {
        return true;
    }
    if matches!(
        first,
        '-' | '?'
            | ':'
            | ','
            | '['
            | ']'
            | '{'
            | '}'
            | '#'
            | '&'
            | '*'
            | '!'
            | '|'
            | '>'
            | '\''
            | '"'
            | '%'
            | '@'
            | '`'
    ) {
        return true;
    }
    if matches!(
        s,
        "true" | "false" | "True" | "False" | "null" | "Null" | "~" | "yes" | "no" | "on" | "off"
    ) {
        return true;
    }
    if looks_like_number(s) || s.starts_with(".inf") || s.starts_with(".nan") {
        return true;
    }
    s.chars().any(|c| c.is_control())
        || s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        || s.contains('\t')
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn scalar(s: &str) -> String {
    if needs_quotes(s) {
        quote(s)
    } else {
        s.to_string()
    }
}

fn emit_scalar(v: &Value) -> Option<String> {
    match v {
        Value::Null => Some("null".to_string()),
        Value::Bool(b) => Some(if *b { "true" } else { "false" }.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::UInt(u) => Some(u.to_string()),
        Value::Float(f) => Some(format_f64(*f)),
        Value::Str(s) => Some(scalar(s)),
        Value::Seq(items) if items.is_empty() => Some("[]".to_string()),
        Value::Map(entries) if entries.is_empty() => Some("{}".to_string()),
        _ => None,
    }
}

fn emit_block(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Seq(items) => {
            for item in items {
                if let Some(s) = emit_scalar(item) {
                    out.push_str(&format!("{pad}- {s}\n"));
                } else if let Value::Map(entries) = item {
                    // Compact form: first key on the dash line, the rest
                    // indented to align with it.
                    let mut first = true;
                    for (k, val) in entries {
                        let lead = if first {
                            format!("{pad}- ")
                        } else {
                            format!("{pad}  ")
                        };
                        first = false;
                        // Keys sit one level in from the dash, so their
                        // nested blocks start two levels in.
                        emit_entry(k, val, &lead, indent + 2, out);
                    }
                } else {
                    out.push_str(&format!("{pad}-\n"));
                    emit_block(item, out, indent + 1);
                }
            }
        }
        Value::Map(entries) => {
            for (k, val) in entries {
                emit_entry(k, val, &pad, indent + 1, out);
            }
        }
        other => {
            // A bare scalar document.
            out.push_str(&format!(
                "{pad}{}\n",
                emit_scalar(other).expect("scalar emit cannot fail")
            ));
        }
    }
}

fn emit_entry(key: &str, val: &Value, lead: &str, child_indent: usize, out: &mut String) {
    let k = scalar(key);
    if let Some(s) = emit_scalar(val) {
        out.push_str(&format!("{lead}{k}: {s}\n"));
    } else {
        out.push_str(&format!("{lead}{k}:\n"));
        emit_block(val, out, child_indent);
    }
}

/// Serializes a value as block-style YAML (with a leading `---`-free body).
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit_block(&value.to_value(), &mut out, 0);
    if out.is_empty() {
        out.push_str("{}\n");
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Line {
    indent: usize,
    /// Content with indentation stripped; never empty.
    text: String,
    number: usize,
}

/// Splits source text into indexed content lines, dropping blanks, comment
/// lines and a leading `---` document marker.
fn lines_of(src: &str) -> Result<Vec<Line>, Error> {
    let mut lines = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let trimmed_end = raw.trim_end();
        if trimmed_end.is_empty() {
            continue;
        }
        let indent_chars = trimmed_end.len() - trimmed_end.trim_start().len();
        let body = &trimmed_end[indent_chars..];
        if body.starts_with('#') {
            continue;
        }
        if i == 0 && body == "---" {
            continue;
        }
        if raw[..indent_chars].contains('\t') {
            return Err(Error::new(format!("line {}: tabs in indentation", i + 1)));
        }
        lines.push(Line {
            indent: indent_chars,
            text: body.to_string(),
            number: i + 1,
        });
    }
    Ok(lines)
}

/// Finds the byte position of a top-level `: ` (or trailing `:`) separator
/// in a mapping line, skipping a leading quoted key.
fn key_split(text: &str) -> Option<(String, &str)> {
    if let Some(rest) = text.strip_prefix('"') {
        // Quoted key: scan to the closing quote.
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    let key = parse_quoted(&text[..i + 2]).ok()?;
                    let after = &rest[i + 1..];
                    let after = after.trim_start();
                    let after = after.strip_prefix(':')?;
                    return Some((key, after.trim_start()));
                }
                _ => {}
            }
        }
        None
    } else {
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            if bytes[i] == b':' && (i + 1 == bytes.len() || bytes[i + 1] == b' ') {
                let key = text[..i].trim().to_string();
                let rest = if i + 1 >= bytes.len() {
                    ""
                } else {
                    text[i + 1..].trim_start()
                };
                return Some((key, rest));
            }
        }
        None
    }
}

fn parse_quoted(s: &str) -> Result<String, Error> {
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| Error::new(format!("malformed quoted scalar: {s}")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| Error::new(format!("invalid \\u escape in {s}")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new("invalid unicode scalar".to_string()))?,
                );
            }
            other => return Err(Error::new(format!("invalid escape \\{other:?}"))),
        }
    }
    Ok(out)
}

/// Strips a trailing ` # comment` from a plain (unquoted) scalar tail.
fn strip_plain_comment(s: &str) -> &str {
    match s.find(" #") {
        Some(pos) => s[..pos].trim_end(),
        None => s,
    }
}

fn parse_scalar_text(s: &str) -> Result<Value, Error> {
    if let Some(body) = s.strip_prefix('"') {
        // A quoted scalar may carry a trailing comment after the close quote.
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    let lit = &s[..i + 2];
                    let rest = s[i + 2..].trim();
                    if !rest.is_empty() && !rest.starts_with('#') {
                        return Err(Error::new(format!("trailing characters after scalar: {s}")));
                    }
                    return Ok(Value::Str(parse_quoted(lit)?));
                }
                _ => {}
            }
        }
        return Err(Error::new(format!("unterminated quoted scalar: {s}")));
    }
    if let Some(body) = s.strip_prefix('\'') {
        // Single-quoted scalar: `''` inside the body is a literal quote.
        let mut out = String::new();
        let mut chars = body.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c != '\'' {
                out.push(c);
                continue;
            }
            if matches!(chars.peek(), Some((_, '\''))) {
                out.push('\'');
                chars.next();
                continue;
            }
            let rest = s[i + 2..].trim();
            if !rest.is_empty() && !rest.starts_with('#') {
                return Err(Error::new(format!("trailing characters after scalar: {s}")));
            }
            return Ok(Value::Str(out));
        }
        return Err(Error::new(format!("unterminated quoted scalar: {s}")));
    }
    if s.starts_with('[') || s.starts_with('{') {
        return parse_flow(s);
    }
    let s = strip_plain_comment(s).trim();
    match s {
        "" | "~" | "null" | "Null" => return Ok(Value::Null),
        "true" | "True" => return Ok(Value::Bool(true)),
        "false" | "False" => return Ok(Value::Bool(false)),
        ".inf" | "+.inf" => return Ok(Value::Float(f64::INFINITY)),
        "-.inf" => return Ok(Value::Float(f64::NEG_INFINITY)),
        ".nan" => return Ok(Value::Float(f64::NAN)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if s.chars().all(|c| c.is_ascii_digit()) {
        if let Ok(u) = s.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    if (s.contains('.') || s.contains('e') || s.contains('E')) && !s.ends_with('.') {
        if let Ok(f) = s.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    }
    Ok(Value::Str(s.to_string()))
}

/// Parses a one-level flow collection: `[a, b]`, `{}`, `{k: v}`.
fn parse_flow(s: &str) -> Result<Value, Error> {
    let s = strip_plain_comment(s).trim();
    if s == "[]" {
        return Ok(Value::Seq(Vec::new()));
    }
    if s == "{}" {
        return Ok(Value::Map(Vec::new()));
    }
    if let Some(inner) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_flow(inner)? {
            items.push(parse_scalar_text(part.trim())?);
        }
        return Ok(Value::Seq(items));
    }
    if let Some(inner) = s.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut entries = Vec::new();
        for part in split_flow(inner)? {
            let (k, rest) = key_split(part.trim())
                .ok_or_else(|| Error::new(format!("malformed flow map entry: {part}")))?;
            entries.push((k, parse_scalar_text(rest)?));
        }
        return Ok(Value::Map(entries));
    }
    Err(Error::new(format!("unsupported flow collection: {s}")))
}

/// Splits flow-collection content on top-level commas (quote-aware).
fn split_flow(inner: &str) -> Result<Vec<&str>, Error> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    let mut depth = 0i32;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '[' | '{' if !in_quotes => depth += 1,
            ']' | '}' if !in_quotes => depth -= 1,
            ',' if !in_quotes && depth == 0 => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return Err(Error::new(format!("unterminated quote in flow: {inner}")));
    }
    if !inner[start..].trim().is_empty() || !parts.is_empty() {
        parts.push(&inner[start..]);
    }
    Ok(parts)
}

struct BlockParser {
    lines: Vec<Line>,
    pos: usize,
}

impl BlockParser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn parse_block(&mut self, min_indent: usize) -> Result<Value, Error> {
        let first = match self.peek() {
            Some(l) if l.indent >= min_indent => l,
            _ => return Ok(Value::Null),
        };
        let indent = first.indent;
        if first.text == "-" || first.text.starts_with("- ") {
            self.parse_seq(indent)
        } else if key_split(&first.text).is_some() {
            self.parse_map(indent)
        } else {
            // A scalar document / nested scalar line.
            let line = self.lines.get(self.pos).unwrap();
            let v = parse_scalar_text(&line.text)?;
            self.pos += 1;
            Ok(v)
        }
    }

    fn parse_seq(&mut self, indent: usize) -> Result<Value, Error> {
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != indent || !(line.text == "-" || line.text.starts_with("- ")) {
                if line.indent > indent {
                    return Err(Error::new(format!(
                        "line {}: unexpected indentation inside sequence",
                        line.number
                    )));
                }
                break;
            }
            let number = line.number;
            let rest = if line.text == "-" {
                String::new()
            } else {
                line.text[2..].trim_start().to_string()
            };
            self.pos += 1;
            if rest.is_empty() || rest.starts_with('#') {
                // Nested block on the following lines.
                items.push(self.parse_block(indent + 1)?);
            } else if rest.starts_with('{') || rest.starts_with('[') {
                // Flow collections are never compact block mappings.
                items.push(parse_scalar_text(&rest)?);
            } else if key_split(&rest).is_some() {
                // Compact mapping: first entry lives on the dash line. Treat
                // the dash line's remainder as a virtual line at indent+2 and
                // merge the following deeper lines.
                let virtual_indent = indent + 2;
                self.lines.insert(
                    self.pos,
                    Line {
                        indent: virtual_indent,
                        text: rest,
                        number,
                    },
                );
                items.push(self.parse_map(virtual_indent)?);
            } else {
                items.push(parse_scalar_text(&rest)?);
            }
        }
        Ok(Value::Seq(items))
    }

    fn parse_map(&mut self, indent: usize) -> Result<Value, Error> {
        let mut entries: Vec<(String, Value)> = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(Error::new(format!(
                    "line {}: unexpected indentation inside mapping",
                    line.number
                )));
            }
            if line.text == "-" || line.text.starts_with("- ") {
                break;
            }
            let number = line.number;
            let (key, rest) = key_split(&line.text)
                .ok_or_else(|| Error::new(format!("line {number}: expected `key: value`")))?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(Error::new(format!("line {number}: duplicate key `{key}`")));
            }
            let rest = rest.to_string();
            self.pos += 1;
            let value = if rest.is_empty() || rest.starts_with('#') {
                match self.peek() {
                    Some(next) if next.indent > indent => self.parse_block(indent + 1)?,
                    Some(next)
                        if next.indent == indent
                            && (next.text == "-" || next.text.starts_with("- ")) =>
                    {
                        // Sequences are commonly indented at the key's level.
                        self.parse_seq(indent)?
                    }
                    _ => Value::Null,
                }
            } else {
                parse_scalar_text(&rest)?
            };
            entries.push((key, value));
        }
        Ok(Value::Map(entries))
    }
}

/// Parses YAML text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed YAML or constructs outside the supported
/// subset.
pub fn parse(src: &str) -> Result<Value, Error> {
    let lines = lines_of(src)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut p = BlockParser { lines, pos: 0 };
    let v = p.parse_block(0)?;
    if let Some(line) = p.peek() {
        return Err(Error::new(format!(
            "line {}: trailing content after document",
            line.number
        )));
    }
    Ok(v)
}

/// Deserializes a value from YAML text.
///
/// # Errors
///
/// Returns an error on malformed YAML or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&parse(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let text = to_string(v).unwrap();
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(&back, v, "round trip mismatch for:\n{text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Int(42));
        round_trip(&Value::Float(1.5));
        round_trip(&Value::Float(2.0));
        round_trip(&Value::Bool(true));
        round_trip(&Value::Null);
        round_trip(&Value::Str("plain".into()));
        round_trip(&Value::Str("needs: quoting".into()));
        round_trip(&Value::Str("- leading dash".into()));
        round_trip(&Value::Str("123".into()));
        round_trip(&Value::Str("".into()));
        round_trip(&Value::Str("line\nbreak\tand \"quotes\"".into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("demo".into())),
            (
                "functions".into(),
                Value::Seq(vec![
                    Value::Map(vec![
                        ("id".into(), Value::Str("f1".into())),
                        ("ms".into(), Value::Float(1500.0)),
                        ("deep".into(), Value::Map(vec![("x".into(), Value::Int(1))])),
                    ]),
                    Value::Map(vec![("id".into(), Value::Str("f2".into()))]),
                ]),
            ),
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
            (
                "scalars".into(),
                Value::Seq(vec![Value::Int(1), Value::Str("two".into()), Value::Null]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn flow_maps_as_sequence_items_parse() {
        let v = parse("edges:\n  - {from: a, to: b}\n  - {from: b, to: c}\n").unwrap();
        assert_eq!(
            v.get("edges"),
            Some(&Value::Seq(vec![
                Value::Map(vec![
                    ("from".into(), Value::Str("a".into())),
                    ("to".into(), Value::Str("b".into())),
                ]),
                Value::Map(vec![
                    ("from".into(), Value::Str("b".into())),
                    ("to".into(), Value::Str("c".into())),
                ]),
            ]))
        );
    }

    #[test]
    fn comments_and_document_marker_are_ignored() {
        let text =
            "---\n# header comment\na: 1 # trailing\n# interleaved\nb:\n  - x # seq comment\n";
        let v = parse(text).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), Some(&Value::Seq(vec![Value::Str("x".into())])));
    }

    #[test]
    fn sequence_indented_under_key_is_accepted() {
        // Both the aligned and the indented sequence style parse.
        let aligned = "items:\n- 1\n- 2\n";
        let indented = "items:\n  - 1\n  - 2\n";
        let expected = Value::Map(vec![(
            "items".into(),
            Value::Seq(vec![Value::Int(1), Value::Int(2)]),
        )]);
        assert_eq!(parse(aligned).unwrap(), expected);
        assert_eq!(parse(indented).unwrap(), expected);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(parse("a: 1\na: 2\n").is_err());
    }

    #[test]
    fn quoted_keys_work() {
        let v = Value::Map(vec![("weird: key".into(), Value::Int(1))]);
        round_trip(&v);
    }

    #[test]
    fn flow_sequences_parse() {
        let v = parse("xs: [1, 2.5, \"a, b\"]\n").unwrap();
        assert_eq!(
            v.get("xs"),
            Some(&Value::Seq(vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::Str("a, b".into())
            ]))
        );
    }

    #[test]
    fn nested_seq_of_seqs_round_trips() {
        let v = Value::Seq(vec![
            Value::Seq(vec![Value::Int(1), Value::Int(2)]),
            Value::Seq(vec![]),
        ]);
        round_trip(&v);
    }

    #[test]
    fn special_floats_round_trip() {
        round_trip(&Value::Float(f64::INFINITY));
        round_trip(&Value::Float(f64::NEG_INFINITY));
        let text = to_string(&Value::Float(f64::NAN)).unwrap();
        assert!(matches!(parse(&text).unwrap(), Value::Float(f) if f.is_nan()));
    }
}
